//! Fbflow: fleet-wide sampled packet-header collection (§3.3.1, Fig 3).
//!
//! Production Fbflow inserts a Netfilter `nflog` target into every
//! machine's iptables rules, sampling at 1:30 000; a user-level agent
//! parses headers and streams them via Scribe to taggers, which join in
//! rack/cluster/role metadata and feed Scuba/Hive.
//!
//! Here, [`FbflowSampler`] is a [`PacketTap`] registered on every host
//! access link: each *machine* samples the packets it sends and receives,
//! independently, exactly as per-host iptables rules would. [`Tagger`]
//! performs the metadata join against the topology, producing the
//! [`TaggedRecord`]s stored in a [`crate::ScubaTable`].

use crate::records::{FlowRecord, TaggedRecord};
use crate::scuba::ScubaTable;
use serde::{Deserialize, Serialize};
use sonet_netsim::{Packet, PacketTap, Simulator};
use sonet_topology::{HostId, LinkId, Node, Topology};
use sonet_util::{Rng, SimTime};

/// Fbflow collection parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FbflowConfig {
    /// Sample one packet in `sampling_rate` (paper: 30 000).
    pub sampling_rate: u64,
}

impl Default for FbflowConfig {
    fn default() -> Self {
        // §3.3.1: "collected with a 1:30,000 sampling rate".
        FbflowConfig {
            sampling_rate: 30_000,
        }
    }
}

/// Per-host packet sampler across the whole fleet.
pub struct FbflowSampler {
    cfg: FbflowConfig,
    rng: Rng,
    /// For each link: the machine whose agent observes it, if it is a host
    /// access link.
    capture_host: Vec<Option<HostId>>,
    samples: Vec<FlowRecord>,
    /// Injected agent loss, in permille (see `set_agent_loss`).
    agent_loss_permille: u32,
    /// Packets that survived nflog sampling (kept + agent-dropped).
    sampled: u64,
    agent_dropped: u64,
}

impl FbflowSampler {
    /// Builds a sampler for `topo`, seeded deterministically.
    pub fn new(topo: &Topology, cfg: FbflowConfig, rng: Rng) -> FbflowSampler {
        assert!(cfg.sampling_rate >= 1, "sampling rate must be >= 1");
        let capture_host = topo
            .links()
            .iter()
            .map(|l| match (l.from, l.to) {
                // Uplink: the sending machine's agent sees it.
                (Node::Host(h), _) => Some(h),
                // Downlink: the receiving machine's agent sees it.
                (_, Node::Host(h)) => Some(h),
                _ => None,
            })
            .collect();
        FbflowSampler {
            cfg,
            rng,
            capture_host,
            samples: Vec::new(),
            agent_loss_permille: 0,
            sampled: 0,
            agent_dropped: 0,
        }
    }

    /// Injects agent-side loss: roughly `fraction` of packets that survive
    /// nflog sampling are dropped before reaching Scribe (0.0 restores
    /// full collection). Deterministic — a hash of the running sample
    /// count, not the RNG — and every drop is counted in
    /// [`FbflowSampler::agent_dropped`], like a real agent's overflow
    /// counters.
    pub fn set_agent_loss(&mut self, fraction: f64) {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "loss fraction {fraction} outside [0, 1]"
        );
        self.agent_loss_permille = (fraction * 1000.0).round() as u32;
    }

    /// Samples lost to injected agent faults.
    pub fn agent_dropped(&self) -> u64 {
        self.agent_dropped
    }

    /// Registers every host access link (up and down) on the simulator —
    /// the "every machine's iptables rules" deployment.
    pub fn deploy_fleet_wide<T: PacketTap>(sim: &mut Simulator<T>, topo: &Topology) {
        for (i, link) in topo.links().iter().enumerate() {
            if link.touches_host() {
                sim.watch_link(LinkId(i as u32));
            }
        }
    }

    /// Raw samples collected so far.
    pub fn samples(&self) -> &[FlowRecord] {
        &self.samples
    }

    /// Consumes the sampler, returning the sample stream.
    pub fn into_samples(self) -> Vec<FlowRecord> {
        self.samples
    }

    /// The configured sampling rate (for scale-up estimates).
    pub fn sampling_rate(&self) -> u64 {
        self.cfg.sampling_rate
    }
}

impl PacketTap for FbflowSampler {
    fn on_packet(&mut self, at: SimTime, link: LinkId, pkt: &Packet) {
        let Some(host) = self.capture_host[link.index()] else {
            return;
        };
        // nflog statistical sampling: each packet sampled independently.
        if self.cfg.sampling_rate > 1 && self.rng.below(self.cfg.sampling_rate) != 0 {
            return;
        }
        // Agent-side loss happens downstream of sampling: the kernel
        // sampled the packet, the user-level agent failed to ship it.
        self.sampled += 1;
        if self.agent_loss_permille > 0
            && self.sampled.wrapping_mul(2_654_435_761) % 1000 < self.agent_loss_permille as u64
        {
            self.agent_dropped += 1;
            return;
        }
        let (src_port, dst_port) = match pkt.dir {
            sonet_netsim::Dir::ClientToServer => (pkt.key.client_port, pkt.key.server_port),
            sonet_netsim::Dir::ServerToClient => (pkt.key.server_port, pkt.key.client_port),
        };
        self.samples.push(FlowRecord {
            at,
            capture_host: host,
            src: pkt.wire_src(),
            dst: pkt.wire_dst(),
            src_port,
            dst_port,
            bytes: pkt.wire_bytes as u64,
            packets: 1,
        });
    }
}

/// The tagger stage: joins samples with topology metadata.
#[derive(Debug, Clone, Copy)]
pub struct Tagger<'t> {
    topo: &'t Topology,
}

impl<'t> Tagger<'t> {
    /// A tagger over `topo`.
    pub fn new(topo: &'t Topology) -> Tagger<'t> {
        Tagger { topo }
    }

    /// Annotates one record.
    pub fn tag(&self, rec: FlowRecord) -> TaggedRecord {
        let src = self.topo.host(rec.src);
        let dst = self.topo.host(rec.dst);
        TaggedRecord {
            rec,
            src_role: src.role,
            dst_role: dst.role,
            src_rack: src.rack,
            dst_rack: dst.rack,
            src_cluster: src.cluster,
            dst_cluster: dst.cluster,
            src_cluster_type: self.topo.cluster(src.cluster).ctype,
            dst_cluster_type: self.topo.cluster(dst.cluster).ctype,
            src_dc: src.datacenter,
            dst_dc: dst.datacenter,
            locality: self.topo.locality(rec.src, rec.dst),
        }
    }

    /// Tags a whole sample stream into a Scuba table — the
    /// agent → Scribe → tagger → Scuba pipeline of Fig 3 in one call.
    pub fn ingest(&self, samples: Vec<FlowRecord>) -> ScubaTable {
        ScubaTable::from_rows(samples.into_iter().map(|s| self.tag(s)).collect())
    }

    /// [`Tagger::ingest`] fanned out over `threads` workers: the stream
    /// is split into contiguous shards, tagged concurrently, and the
    /// shard tables merged back in stream order. Tagging is a pure
    /// per-record join, so the resulting table is byte-identical to the
    /// serial `ingest` for every thread count.
    pub fn ingest_sharded(&self, samples: &[FlowRecord], threads: usize) -> ScubaTable {
        sonet_util::obs::counter_add!("telemetry.samples_tagged", samples.len() as u64);
        let shards = sonet_util::par::split_ranges(threads, samples.len());
        let tables = sonet_util::par::map_indexed(threads, shards.len(), |s| {
            ScubaTable::from_rows(
                samples[shards[s].clone()]
                    .iter()
                    .map(|&r| self.tag(r))
                    .collect(),
            )
        });
        let mut merged = ScubaTable::from_rows(Vec::with_capacity(samples.len()));
        for t in tables {
            merged.merge(t);
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonet_netsim::SimConfig;
    use sonet_topology::{ClusterSpec, Locality, TopologySpec};
    use sonet_util::SimDuration;
    use std::sync::Arc;

    fn topo() -> Arc<Topology> {
        Arc::new(
            Topology::build(TopologySpec::single_dc(vec![
                ClusterSpec::frontend(8, 4),
                ClusterSpec::hadoop(4, 4),
            ]))
            .expect("valid"),
        )
    }

    #[test]
    fn sampling_rate_one_captures_everything_on_host_links() {
        let topo = topo();
        let sampler = FbflowSampler::new(&topo, FbflowConfig { sampling_rate: 1 }, Rng::new(7));
        let mut sim =
            Simulator::new(Arc::clone(&topo), SimConfig::default(), sampler).expect("config");
        FbflowSampler::deploy_fleet_wide(&mut sim, &topo);
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        let c = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        sim.send_message(c, SimTime::ZERO, 1000, 500, SimDuration::ZERO)
            .expect("send");
        sim.run_until(SimTime::from_millis(50));
        let (out, sampler) = sim.finish();
        // Every packet crosses exactly two host links (src uplink + dst
        // downlink), so sample count = 2 × delivered packets.
        assert_eq!(sampler.samples().len() as u64, 2 * out.delivered_packets);
        // Each packet is observed once by each endpoint's agent.
        let by_a = sampler
            .samples()
            .iter()
            .filter(|s| s.capture_host == a)
            .count();
        let by_b = sampler
            .samples()
            .iter()
            .filter(|s| s.capture_host == b)
            .count();
        assert_eq!(by_a, by_b);
        assert_eq!(by_a + by_b, sampler.samples().len());
    }

    #[test]
    fn sampling_rate_thins_the_stream() {
        let topo = topo();
        let sampler = FbflowSampler::new(&topo, FbflowConfig { sampling_rate: 10 }, Rng::new(9));
        let mut sim =
            Simulator::new(Arc::clone(&topo), SimConfig::default(), sampler).expect("config");
        FbflowSampler::deploy_fleet_wide(&mut sim, &topo);
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        let c = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        // ~2000 data packets each way.
        sim.send_message(c, SimTime::ZERO, 3_000_000, 3_000_000, SimDuration::ZERO)
            .expect("send");
        sim.run_until(SimTime::from_secs(2));
        let (out, sampler) = sim.finish();
        let observed = sampler.samples().len() as f64;
        let expected = 2.0 * out.delivered_packets as f64 / 10.0;
        assert!(
            (observed - expected).abs() < expected * 0.25,
            "observed {observed}, expected ≈{expected}"
        );
    }

    #[test]
    fn agent_loss_thins_samples_and_counts_drops() {
        let run = |loss: f64| {
            let topo = topo();
            let mut sampler =
                FbflowSampler::new(&topo, FbflowConfig { sampling_rate: 1 }, Rng::new(7));
            sampler.set_agent_loss(loss);
            let mut sim =
                Simulator::new(Arc::clone(&topo), SimConfig::default(), sampler).expect("config");
            FbflowSampler::deploy_fleet_wide(&mut sim, &topo);
            let a = topo.racks()[0].hosts[0];
            let b = topo.racks()[1].hosts[0];
            let c = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
            sim.send_message(c, SimTime::ZERO, 200_000, 200_000, SimDuration::ZERO)
                .expect("send");
            sim.run_until(SimTime::from_secs(1));
            let (out, sampler) = sim.finish();
            (out, sampler)
        };
        // Total agent failure: nothing collected, everything counted.
        let (out, sampler) = run(1.0);
        assert!(sampler.samples().is_empty());
        assert_eq!(sampler.agent_dropped(), 2 * out.delivered_packets);
        // Partial loss: proportional, and deterministic across runs.
        let (_, a) = run(0.25);
        let total = a.samples().len() as u64 + a.agent_dropped();
        let lost = a.agent_dropped() as f64 / total as f64;
        assert!(
            (lost - 0.25).abs() < 0.05,
            "lost fraction {lost}, wanted ≈0.25"
        );
        let (_, b) = run(0.25);
        assert_eq!(a.samples().len(), b.samples().len());
        assert_eq!(a.agent_dropped(), b.agent_dropped());
    }

    #[test]
    fn tagger_joins_roles_and_locality() {
        let topo = topo();
        let tagger = Tagger::new(&topo);
        let web = topo.hosts_with_role(sonet_topology::HostRole::Web)[0];
        let hadoop = topo.hosts_with_role(sonet_topology::HostRole::Hadoop)[0];
        let rec = FlowRecord {
            at: SimTime::ZERO,
            capture_host: web,
            src: web,
            dst: hadoop,
            src_port: 40000,
            dst_port: 50070,
            bytes: 100,
            packets: 1,
        };
        let tagged = tagger.tag(rec);
        assert_eq!(tagged.src_role, sonet_topology::HostRole::Web);
        assert_eq!(tagged.dst_role, sonet_topology::HostRole::Hadoop);
        assert_eq!(tagged.locality, Locality::IntraDatacenter);
        assert_eq!(
            tagged.src_cluster_type,
            sonet_topology::ClusterType::Frontend
        );
        assert_eq!(tagged.dst_cluster_type, sonet_topology::ClusterType::Hadoop);
    }
}
