//! Record types produced by the collection systems.

use serde::{Deserialize, Serialize};
use sonet_netsim::Packet;
use sonet_topology::{
    ClusterId, ClusterType, DatacenterId, HostId, HostRole, LinkId, Locality, RackId,
};
use sonet_util::SimTime;

/// A full packet-header capture (port mirroring output).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacketRecord {
    /// Capture timestamp (end of serialization on the mirrored port).
    pub at: SimTime,
    /// The mirrored link the packet crossed.
    pub link: LinkId,
    /// The packet header.
    pub pkt: Packet,
}

/// One Fbflow sample (or one flow-tier observation): the parsed header
/// fields an agent extracts, before tagging.
///
/// `bytes`/`packets` are the *represented* amounts: for a packet-tier
/// sample this is one packet's wire size; for the fleet flow tier it can
/// aggregate many packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// Sample timestamp.
    pub at: SimTime,
    /// The machine whose agent captured this sample.
    pub capture_host: HostId,
    /// Transmitting host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Wire bytes represented by this record.
    pub bytes: u64,
    /// Packets represented by this record.
    pub packets: u64,
}

/// A record after the tagger joined it with topology metadata (§3.3.1:
/// "taggers ... annotate it with additional information such as the rack
/// and cluster containing the machine").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaggedRecord {
    /// The underlying sample.
    pub rec: FlowRecord,
    /// Role of the transmitting host.
    pub src_role: HostRole,
    /// Role of the receiving host.
    pub dst_role: HostRole,
    /// Rack of the transmitting host.
    pub src_rack: RackId,
    /// Rack of the receiving host.
    pub dst_rack: RackId,
    /// Cluster of the transmitting host.
    pub src_cluster: ClusterId,
    /// Cluster of the receiving host.
    pub dst_cluster: ClusterId,
    /// Type of the source cluster.
    pub src_cluster_type: ClusterType,
    /// Type of the destination cluster.
    pub dst_cluster_type: ClusterType,
    /// Datacenter of the transmitting host.
    pub src_dc: DatacenterId,
    /// Datacenter of the receiving host.
    pub dst_dc: DatacenterId,
    /// Distance class between the endpoints.
    pub locality: Locality,
}
