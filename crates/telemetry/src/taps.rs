//! Tap combinators: run several collection systems during one simulation.
//!
//! The engine takes a single tap; [`TapPair`] composes two (nest pairs for
//! more). This mirrors reality: the paper's port mirrors and Fbflow ran
//! concurrently over the same production traffic.

use sonet_netsim::{Packet, PacketTap};
use sonet_topology::LinkId;
use sonet_util::SimTime;

/// Delivers every observed packet to both taps, in order.
#[derive(Debug, Clone, Default)]
pub struct TapPair<A, B> {
    /// First tap.
    pub first: A,
    /// Second tap.
    pub second: B,
}

impl<A, B> TapPair<A, B> {
    /// Composes two taps.
    pub fn new(first: A, second: B) -> TapPair<A, B> {
        TapPair { first, second }
    }

    /// Splits the pair back into its parts.
    pub fn into_parts(self) -> (A, B) {
        (self.first, self.second)
    }
}

impl<A: PacketTap, B: PacketTap> PacketTap for TapPair<A, B> {
    fn on_packet(&mut self, at: SimTime, link: LinkId, pkt: &Packet) {
        self.first.on_packet(at, link, pkt);
        self.second.on_packet(at, link, pkt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonet_netsim::{ConnId, Dir, FlowKey, PacketKind};
    use sonet_topology::HostId;

    #[derive(Default)]
    struct Counter(u64);
    impl PacketTap for Counter {
        fn on_packet(&mut self, _: SimTime, _: LinkId, _: &Packet) {
            self.0 += 1;
        }
    }

    #[test]
    fn both_taps_see_every_packet() {
        let mut pair = TapPair::new(Counter::default(), Counter::default());
        let pkt = Packet {
            conn: ConnId { idx: 0, gen: 0 },
            key: FlowKey {
                client: HostId(0),
                server: HostId(1),
                client_port: 1,
                server_port: 2,
            },
            dir: Dir::ClientToServer,
            kind: PacketKind::Ack,
            seq: 0,
            msg: 0,
            payload: 0,
            wire_bytes: 66,
        };
        for _ in 0..5 {
            pair.on_packet(SimTime::ZERO, LinkId(0), &pkt);
        }
        let (a, b) = pair.into_parts();
        assert_eq!(a.0, 5);
        assert_eq!(b.0, 5);
    }
}
