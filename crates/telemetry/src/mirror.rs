//! Port mirroring (§3.3.2).
//!
//! "We collect traces by turning on port mirroring on the RSW ... and
//! mirroring the full, bi-directional traffic for a single server to our
//! collection server. ... a custom kernel module that effectively pins all
//! free RAM on the server and uses it to buffer incoming packets. ...
//! Memory restrictions on our collection servers limit the traces we
//! collect in this fashion to a few minutes in length."
//!
//! [`PortMirror`] reproduces these constraints: it records every packet the
//! engine transmits on the links it was registered on, up to a fixed
//! packet capacity, and reports truncation when the buffer fills.

use crate::records::PacketRecord;
use sonet_netsim::{PacketTap, Simulator};
use sonet_topology::{HostId, LinkId, Topology};
use sonet_util::SimTime;

/// RAM-bounded full-fidelity capture of mirrored ports.
///
/// Serializable so a supervised capture can checkpoint its tap alongside
/// the engine: the mirror *is* dynamic state (records, loss counters, the
/// deterministic loss schedule's packet ordinal) and must resume exactly
/// where it stopped for a resumed capture to be byte-identical.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PortMirror {
    records: Vec<PacketRecord>,
    capacity: usize,
    overflow: u64,
    mirrored_hosts: Vec<HostId>,
    /// Injected capture loss, in permille (see `set_fault_loss`).
    fault_loss_permille: u32,
    /// Packets offered to the mirror (captured + overflowed + dropped).
    seen: u64,
    fault_dropped: u64,
}

impl PortMirror {
    /// A mirror buffer able to hold `capacity` packet headers (the pinned
    /// free RAM of the collection server).
    pub fn new(capacity: usize) -> PortMirror {
        assert!(capacity > 0, "mirror buffer must hold at least one packet");
        PortMirror {
            records: Vec::new(),
            capacity,
            overflow: 0,
            mirrored_hosts: Vec::new(),
            fault_loss_permille: 0,
            seen: 0,
            fault_dropped: 0,
        }
    }

    /// Injects capture-path loss: from now on, roughly `fraction` of
    /// offered packets are dropped before buffering (0.0 restores full
    /// fidelity). The decision is a deterministic hash of the running
    /// packet count — no RNG — so a faulted capture replays byte-for-byte.
    /// Every drop is counted in [`PortMirror::fault_dropped`], mirroring
    /// how production capture loses data while its loss counters keep
    /// working.
    pub fn set_fault_loss(&mut self, fraction: f64) {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "loss fraction {fraction} outside [0, 1]"
        );
        self.fault_loss_permille = (fraction * 1000.0).round() as u32;
    }

    /// Packets lost to injected capture faults (distinct from
    /// [`PortMirror::overflow`], the memory-limit loss).
    pub fn fault_dropped(&self) -> u64 {
        self.fault_dropped
    }

    /// Packets offered to the mirror, whether captured or lost.
    pub fn offered(&self) -> u64 {
        self.seen
    }

    /// Registers the bidirectional access links of `host` on `sim` and
    /// notes the host as mirrored.
    pub fn mirror_host<T: PacketTap>(&mut self, sim: &mut Simulator<T>, host: HostId) {
        let topo = sim.topology();
        let up = topo.host_uplink(host);
        let down = topo.host_downlink(host);
        sim.watch_link(up);
        sim.watch_link(down);
        self.mirrored_hosts.push(host);
    }

    /// Registers every host in `rack_hosts` (the Web-server-rack capture of
    /// §3.3.2, possible there because utilization is low).
    pub fn mirror_rack<T: PacketTap>(
        &mut self,
        sim: &mut Simulator<T>,
        topo: &Topology,
        rack: sonet_topology::RackId,
    ) {
        for &h in &topo.rack(rack).hosts.clone() {
            self.mirror_host(sim, h);
        }
    }

    /// Hosts being mirrored.
    pub fn mirrored_hosts(&self) -> &[HostId] {
        &self.mirrored_hosts
    }

    /// Captured records, in per-link time order (interleaved across links).
    pub fn records(&self) -> &[PacketRecord] {
        &self.records
    }

    /// Consumes the mirror, returning the capture.
    pub fn into_records(self) -> Vec<PacketRecord> {
        self.records
    }

    /// Packets that arrived after the buffer filled.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// True if the capture hit the memory limit.
    pub fn truncated(&self) -> bool {
        self.overflow > 0
    }

    /// Timestamp of the last captured packet, if any.
    pub fn last_capture_at(&self) -> Option<SimTime> {
        self.records.iter().map(|r| r.at).max()
    }
}

impl PacketTap for PortMirror {
    fn on_packet(&mut self, at: SimTime, link: LinkId, pkt: &sonet_netsim::Packet) {
        self.seen += 1;
        // Knuth multiplicative hash of the packet ordinal: spreads drops
        // evenly through the stream, deterministically.
        if self.fault_loss_permille > 0
            && self.seen.wrapping_mul(2_654_435_761) % 1000 < self.fault_loss_permille as u64
        {
            self.fault_dropped += 1;
            return;
        }
        if self.records.len() >= self.capacity {
            self.overflow += 1;
            return;
        }
        self.records.push(PacketRecord {
            at,
            link,
            pkt: *pkt,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonet_netsim::{SimConfig, Simulator};
    use sonet_topology::{ClusterSpec, TopologySpec};
    use sonet_util::SimDuration;
    use std::sync::Arc;

    fn topo() -> Arc<Topology> {
        Arc::new(
            Topology::build(TopologySpec::single_dc(vec![ClusterSpec::frontend(8, 4)]))
                .expect("valid"),
        )
    }

    #[test]
    fn captures_bidirectional_traffic_of_mirrored_host_only() {
        let topo = topo();
        let mirror = PortMirror::new(100_000);
        let mut sim =
            Simulator::new(Arc::clone(&topo), SimConfig::default(), mirror).expect("config");
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        let c = topo.racks()[2].hosts[0];

        // Mirror host a — requires a reference dance since the mirror *is* the tap.
        let up = topo.host_uplink(a);
        let down = topo.host_downlink(a);
        sim.watch_link(up);
        sim.watch_link(down);

        let c1 = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        sim.send_message(c1, SimTime::ZERO, 1000, 1000, SimDuration::ZERO)
            .expect("send");
        // Unrelated flow between b and c must not be captured.
        let c2 = sim.open_connection(SimTime::ZERO, b, c, 80).expect("open");
        sim.send_message(c2, SimTime::ZERO, 1000, 1000, SimDuration::ZERO)
            .expect("send");

        sim.run_until(SimTime::from_millis(50));
        let (_, mirror) = sim.finish();
        assert!(!mirror.records().is_empty());
        for r in mirror.records() {
            assert!(
                r.pkt.wire_src() == a || r.pkt.wire_dst() == a,
                "captured a packet not touching the mirrored host"
            );
            assert!(r.link == up || r.link == down);
        }
        assert!(!mirror.truncated());
    }

    #[test]
    fn buffer_fills_and_truncates() {
        let topo = topo();
        let mirror = PortMirror::new(10);
        let mut sim =
            Simulator::new(Arc::clone(&topo), SimConfig::default(), mirror).expect("config");
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        sim.watch_link(topo.host_uplink(a));
        sim.watch_link(topo.host_downlink(a));
        let c1 = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        sim.send_message(c1, SimTime::ZERO, 100_000, 100_000, SimDuration::ZERO)
            .expect("send");
        sim.run_until(SimTime::from_millis(100));
        let (_, mirror) = sim.finish();
        assert_eq!(mirror.records().len(), 10);
        assert!(mirror.truncated());
        assert!(mirror.overflow() > 0);
    }

    #[test]
    fn mirror_host_helper_registers_links() {
        let topo = topo();
        // Use a NullTap sim to exercise the helper; the helper only flips
        // watch bits and records the host.
        let mut sim = Simulator::new(
            Arc::clone(&topo),
            SimConfig::default(),
            sonet_netsim::NullTap,
        )
        .expect("config");
        let mut mirror = PortMirror::new(10);
        let a = topo.racks()[0].hosts[0];
        mirror.mirror_host(&mut sim, a);
        assert_eq!(mirror.mirrored_hosts(), &[a]);
    }

    #[test]
    #[should_panic(expected = "at least one packet")]
    fn zero_capacity_rejected() {
        let _ = PortMirror::new(0);
    }

    fn run_with_loss(fraction: f64) -> PortMirror {
        let topo = topo();
        let mut mirror = PortMirror::new(100_000);
        mirror.set_fault_loss(fraction);
        let mut sim =
            Simulator::new(Arc::clone(&topo), SimConfig::default(), mirror).expect("config");
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        sim.watch_link(topo.host_uplink(a));
        sim.watch_link(topo.host_downlink(a));
        let c1 = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        sim.send_message(c1, SimTime::ZERO, 500_000, 500_000, SimDuration::ZERO)
            .expect("send");
        sim.run_until(SimTime::from_secs(1));
        let (_, mirror) = sim.finish();
        mirror
    }

    #[test]
    fn total_capture_loss_drops_everything_but_counts_it() {
        let mirror = run_with_loss(1.0);
        assert!(mirror.records().is_empty());
        assert!(mirror.fault_dropped() > 0);
        assert_eq!(mirror.fault_dropped(), mirror.offered());
        assert!(!mirror.truncated(), "fault loss is not memory overflow");
    }

    #[test]
    fn partial_capture_loss_is_proportional_and_deterministic() {
        let a = run_with_loss(0.4);
        assert!(a.fault_dropped() > 0);
        assert!(!a.records().is_empty());
        let lost = a.fault_dropped() as f64 / a.offered() as f64;
        assert!(
            (lost - 0.4).abs() < 0.05,
            "lost fraction {lost}, wanted ≈0.4"
        );
        // Same run, same loss schedule: byte-identical capture.
        let b = run_with_loss(0.4);
        assert_eq!(a.records().len(), b.records().len());
        assert_eq!(a.fault_dropped(), b.fault_dropped());
    }
}
