//! Trace serialization: JSONL export/import of captures and samples.
//!
//! The paper's workflow "spooled \[captures\] to remote storage for
//! analysis" (§3.3.2); this module is that hand-off. One JSON object per
//! line keeps files streamable and greppable, and the reader tolerates
//! (and counts) malformed lines rather than aborting a multi-gigabyte
//! import at the first bad record.

use crate::records::{FlowRecord, PacketRecord};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// Import statistics: what was read and what was rejected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImportStats {
    /// Records successfully parsed.
    pub ok: u64,
    /// Lines that failed to parse and were skipped.
    pub skipped: u64,
}

/// Writes packet records as JSONL.
pub fn write_packets<W: Write>(out: W, records: &[PacketRecord]) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    for r in records {
        serde_json::to_writer(&mut w, r)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        w.write_all(b"\n")?;
    }
    w.flush()
}

/// Reads packet records from JSONL, skipping malformed lines.
pub fn read_packets<R: Read>(input: R) -> io::Result<(Vec<PacketRecord>, ImportStats)> {
    let mut records = Vec::new();
    let mut stats = ImportStats::default();
    for line in BufReader::new(input).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<PacketRecord>(&line) {
            Ok(r) => {
                records.push(r);
                stats.ok += 1;
            }
            Err(_) => stats.skipped += 1,
        }
    }
    Ok((records, stats))
}

/// Writes Fbflow samples as JSONL.
pub fn write_flows<W: Write>(out: W, records: &[FlowRecord]) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    for r in records {
        serde_json::to_writer(&mut w, r)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        w.write_all(b"\n")?;
    }
    w.flush()
}

/// Reads Fbflow samples from JSONL, skipping malformed lines.
pub fn read_flows<R: Read>(input: R) -> io::Result<(Vec<FlowRecord>, ImportStats)> {
    let mut records = Vec::new();
    let mut stats = ImportStats::default();
    for line in BufReader::new(input).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<FlowRecord>(&line) {
            Ok(r) => {
                records.push(r);
                stats.ok += 1;
            }
            Err(_) => stats.skipped += 1,
        }
    }
    Ok((records, stats))
}

/// Writes a demand matrix as CSV (plotting hand-off for Fig 5).
pub fn write_matrix_csv<W: Write>(out: W, matrix: &[Vec<u64>]) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    for row in matrix {
        let line = row
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(",");
        writeln!(w, "{line}")?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonet_netsim::{ConnId, Dir, FlowKey, Packet, PacketKind};
    use sonet_topology::{HostId, LinkId};
    use sonet_util::SimTime;

    fn pkt_record(at_us: u64, wire: u32) -> PacketRecord {
        PacketRecord {
            at: SimTime::from_micros(at_us),
            link: LinkId(3),
            pkt: Packet {
                conn: ConnId { idx: 7, gen: 1 },
                key: FlowKey {
                    client: HostId(1),
                    server: HostId(2),
                    client_port: 999,
                    server_port: 80,
                },
                dir: Dir::ClientToServer,
                kind: PacketKind::Data { last_of_msg: true },
                seq: 5,
                msg: 2,
                payload: wire - 66,
                wire_bytes: wire,
            },
        }
    }

    #[test]
    fn packets_round_trip() {
        let records = vec![pkt_record(0, 100), pkt_record(5, 1526)];
        let mut buf = Vec::new();
        write_packets(&mut buf, &records).expect("write");
        let (back, stats) = read_packets(buf.as_slice()).expect("read");
        assert_eq!(back, records);
        assert_eq!(stats, ImportStats { ok: 2, skipped: 0 });
    }

    #[test]
    fn malformed_lines_are_counted_not_fatal() {
        let records = vec![pkt_record(0, 100)];
        let mut buf = Vec::new();
        write_packets(&mut buf, &records).expect("write");
        buf.extend_from_slice(b"{not json}\n\n");
        write_packets(&mut buf, &records).expect("append");
        let (back, stats) = read_packets(buf.as_slice()).expect("read");
        assert_eq!(back.len(), 2);
        assert_eq!(stats, ImportStats { ok: 2, skipped: 1 });
    }

    #[test]
    fn flows_round_trip() {
        let records = vec![FlowRecord {
            at: SimTime::from_secs(1),
            capture_host: HostId(0),
            src: HostId(0),
            dst: HostId(1),
            src_port: 40000,
            dst_port: 80,
            bytes: 1234,
            packets: 3,
        }];
        let mut buf = Vec::new();
        write_flows(&mut buf, &records).expect("write");
        let (back, stats) = read_flows(buf.as_slice()).expect("read");
        assert_eq!(back, records);
        assert_eq!(stats.ok, 1);
    }

    #[test]
    fn corrupt_line_mid_file_skips_only_that_record() {
        // A truncated write (crash mid-spool) corrupts one record in the
        // middle; everything before and after it must still import.
        let records = vec![
            FlowRecord {
                at: SimTime::from_secs(1),
                capture_host: HostId(0),
                src: HostId(0),
                dst: HostId(1),
                src_port: 40000,
                dst_port: 80,
                bytes: 1234,
                packets: 3,
            },
            FlowRecord {
                at: SimTime::from_secs(2),
                capture_host: HostId(1),
                src: HostId(1),
                dst: HostId(0),
                src_port: 40001,
                dst_port: 443,
                bytes: 99,
                packets: 1,
            },
        ];
        let mut buf = Vec::new();
        write_flows(&mut buf, &records[..1]).expect("write head");
        // A record cut off mid-object, as a crashed writer leaves behind.
        buf.extend_from_slice(b"{\"at\":123,\"capture_host\"\n");
        write_flows(&mut buf, &records[1..]).expect("write tail");
        let (back, stats) = read_flows(buf.as_slice()).expect("read");
        assert_eq!(back, records);
        assert_eq!(stats, ImportStats { ok: 2, skipped: 1 });
    }

    #[test]
    fn matrix_csv_layout() {
        let m = vec![vec![1u64, 2], vec![3, 4]];
        let mut buf = Vec::new();
        write_matrix_csv(&mut buf, &m).expect("write");
        assert_eq!(String::from_utf8(buf).expect("utf8"), "1,2\n3,4\n");
    }
}
