//! Trace serialization: JSONL export/import of captures and samples.
//!
//! The paper's workflow "spooled \[captures\] to remote storage for
//! analysis" (§3.3.2); this module is that hand-off. One JSON object per
//! line keeps files streamable and greppable, and the reader tolerates
//! (and counts) malformed lines rather than aborting a multi-gigabyte
//! import at the first bad record.

use crate::records::{FlowRecord, PacketRecord};
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Import statistics: what was read and what was rejected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImportStats {
    /// Records successfully parsed.
    pub ok: u64,
    /// Lines that failed to parse and were skipped.
    pub skipped: u64,
}

/// Writes packet records as JSONL.
pub fn write_packets<W: Write>(out: W, records: &[PacketRecord]) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    for r in records {
        serde_json::to_writer(&mut w, r)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        w.write_all(b"\n")?;
    }
    w.flush()
}

/// Reads packet records from JSONL, skipping malformed lines.
pub fn read_packets<R: Read>(input: R) -> io::Result<(Vec<PacketRecord>, ImportStats)> {
    let mut records = Vec::new();
    let mut stats = ImportStats::default();
    for line in BufReader::new(input).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<PacketRecord>(&line) {
            Ok(r) => {
                records.push(r);
                stats.ok += 1;
            }
            Err(_) => stats.skipped += 1,
        }
    }
    Ok((records, stats))
}

/// Writes Fbflow samples as JSONL.
pub fn write_flows<W: Write>(out: W, records: &[FlowRecord]) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    for r in records {
        serde_json::to_writer(&mut w, r)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        w.write_all(b"\n")?;
    }
    w.flush()
}

/// Reads Fbflow samples from JSONL, skipping malformed lines.
pub fn read_flows<R: Read>(input: R) -> io::Result<(Vec<FlowRecord>, ImportStats)> {
    let mut records = Vec::new();
    let mut stats = ImportStats::default();
    for line in BufReader::new(input).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<FlowRecord>(&line) {
            Ok(r) => {
                records.push(r);
                stats.ok += 1;
            }
            Err(_) => stats.skipped += 1,
        }
    }
    Ok((records, stats))
}

/// What [`TraceSpool::recover`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Complete lines retained.
    pub lines: u64,
    /// Bytes of torn trailing line discarded (a crash mid-write leaves a
    /// partial last record; recovery truncates it away).
    pub dropped_bytes: u64,
}

/// Crash-safe, append-only JSONL spool.
///
/// A supervised run appends records incrementally instead of buffering a
/// whole capture in memory, and calls [`TraceSpool::sync`] at every
/// checkpoint so the line count recorded in the checkpoint is durable on
/// disk. Two recovery paths close the crash window:
///
/// * [`TraceSpool::recover`] reopens after an unclean shutdown, truncating
///   a torn trailing line (the only corruption an append-only writer can
///   leave behind);
/// * [`TraceSpool::resume`] reopens at a checkpoint-recorded line count,
///   discarding records spooled after the last checkpoint so the file and
///   the restored simulation state agree again.
///
/// Either way the file stays valid JSONL that the tolerant readers above
/// ([`read_flows`], [`ImportStats::skipped`]) accept in full.
#[derive(Debug)]
pub struct TraceSpool {
    w: BufWriter<File>,
    path: PathBuf,
    lines: u64,
}

impl TraceSpool {
    /// Creates (or truncates) a spool at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<TraceSpool> {
        let path = path.as_ref().to_path_buf();
        let f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(TraceSpool {
            w: BufWriter::new(f),
            path,
            lines: 0,
        })
    }

    /// Reopens a spool after an unclean shutdown: scans for the last
    /// complete line, truncates anything after it, and appends from there.
    pub fn recover(path: impl AsRef<Path>) -> io::Result<(TraceSpool, RecoveryStats)> {
        let path = path.as_ref().to_path_buf();
        let mut f = OpenOptions::new().read(true).write(true).open(&path)?;
        let (lines, end) = scan_complete_lines(&mut f, u64::MAX)?;
        let file_len = f.seek(SeekFrom::End(0))?;
        let dropped = file_len - end;
        if dropped > 0 {
            f.set_len(end)?;
        }
        f.seek(SeekFrom::Start(end))?;
        Ok((
            TraceSpool {
                w: BufWriter::new(f),
                path,
                lines,
            },
            RecoveryStats {
                lines,
                dropped_bytes: dropped,
            },
        ))
    }

    /// Reopens a spool at a checkpoint-recorded line count, truncating any
    /// records spooled after that checkpoint. Fails with `InvalidData`
    /// when the file holds fewer complete lines than the checkpoint claims
    /// — the spool and checkpoint then cannot belong to the same run.
    pub fn resume(path: impl AsRef<Path>, lines: u64) -> io::Result<TraceSpool> {
        let path = path.as_ref().to_path_buf();
        let mut f = OpenOptions::new().read(true).write(true).open(&path)?;
        let (found, end) = scan_complete_lines(&mut f, lines)?;
        if found < lines {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "spool {} holds {found} complete lines, checkpoint expects {lines}",
                    path.display()
                ),
            ));
        }
        f.set_len(end)?;
        f.seek(SeekFrom::Start(end))?;
        Ok(TraceSpool {
            w: BufWriter::new(f),
            path,
            lines,
        })
    }

    /// Appends one record as a JSON line.
    pub fn append<T: serde::Serialize>(&mut self, record: &T) -> io::Result<()> {
        let line = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        self.w.write_all(line.as_bytes())?;
        self.w.write_all(b"\n")?;
        self.lines += 1;
        sonet_util::obs::counter_add!("telemetry.spool_records", 1);
        sonet_util::obs::counter_add!("telemetry.spool_bytes", line.len() as u64 + 1);
        Ok(())
    }

    /// Flushes buffered records and syncs file data to disk, returning the
    /// durable line count (what a checkpoint should record).
    pub fn sync(&mut self) -> io::Result<u64> {
        self.w.flush()?;
        self.w.get_ref().sync_data()?;
        Ok(self.lines)
    }

    /// Complete lines written so far (buffered ones included).
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// The spool's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Scans up to `max_lines` newline-terminated lines from the start of
/// `f`, returning `(lines_found, byte_offset_after_last_counted_line)`.
fn scan_complete_lines(f: &mut File, max_lines: u64) -> io::Result<(u64, u64)> {
    f.seek(SeekFrom::Start(0))?;
    let mut r = BufReader::new(&mut *f);
    let mut lines = 0u64;
    let mut end = 0u64;
    let mut pos = 0u64;
    let mut buf = [0u8; 64 * 1024];
    'outer: loop {
        let n = r.read(&mut buf)?;
        if n == 0 {
            break;
        }
        for &b in &buf[..n] {
            pos += 1;
            if b == b'\n' {
                lines += 1;
                end = pos;
                if lines >= max_lines {
                    break 'outer;
                }
            }
        }
    }
    Ok((lines, end))
}

/// Writes a demand matrix as CSV (plotting hand-off for Fig 5).
pub fn write_matrix_csv<W: Write>(out: W, matrix: &[Vec<u64>]) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    for row in matrix {
        let line = row
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(",");
        writeln!(w, "{line}")?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonet_netsim::{ConnId, Dir, FlowKey, Packet, PacketKind};
    use sonet_topology::{HostId, LinkId};
    use sonet_util::SimTime;

    fn pkt_record(at_us: u64, wire: u32) -> PacketRecord {
        PacketRecord {
            at: SimTime::from_micros(at_us),
            link: LinkId(3),
            pkt: Packet {
                conn: ConnId { idx: 7, gen: 1 },
                key: FlowKey {
                    client: HostId(1),
                    server: HostId(2),
                    client_port: 999,
                    server_port: 80,
                },
                dir: Dir::ClientToServer,
                kind: PacketKind::Data { last_of_msg: true },
                seq: 5,
                msg: 2,
                payload: wire - 66,
                wire_bytes: wire,
            },
        }
    }

    #[test]
    fn packets_round_trip() {
        let records = vec![pkt_record(0, 100), pkt_record(5, 1526)];
        let mut buf = Vec::new();
        write_packets(&mut buf, &records).expect("write");
        let (back, stats) = read_packets(buf.as_slice()).expect("read");
        assert_eq!(back, records);
        assert_eq!(stats, ImportStats { ok: 2, skipped: 0 });
    }

    #[test]
    fn malformed_lines_are_counted_not_fatal() {
        let records = vec![pkt_record(0, 100)];
        let mut buf = Vec::new();
        write_packets(&mut buf, &records).expect("write");
        buf.extend_from_slice(b"{not json}\n\n");
        write_packets(&mut buf, &records).expect("append");
        let (back, stats) = read_packets(buf.as_slice()).expect("read");
        assert_eq!(back.len(), 2);
        assert_eq!(stats, ImportStats { ok: 2, skipped: 1 });
    }

    #[test]
    fn flows_round_trip() {
        let records = vec![FlowRecord {
            at: SimTime::from_secs(1),
            capture_host: HostId(0),
            src: HostId(0),
            dst: HostId(1),
            src_port: 40000,
            dst_port: 80,
            bytes: 1234,
            packets: 3,
        }];
        let mut buf = Vec::new();
        write_flows(&mut buf, &records).expect("write");
        let (back, stats) = read_flows(buf.as_slice()).expect("read");
        assert_eq!(back, records);
        assert_eq!(stats.ok, 1);
    }

    #[test]
    fn corrupt_line_mid_file_skips_only_that_record() {
        // A truncated write (crash mid-spool) corrupts one record in the
        // middle; everything before and after it must still import.
        let records = vec![
            FlowRecord {
                at: SimTime::from_secs(1),
                capture_host: HostId(0),
                src: HostId(0),
                dst: HostId(1),
                src_port: 40000,
                dst_port: 80,
                bytes: 1234,
                packets: 3,
            },
            FlowRecord {
                at: SimTime::from_secs(2),
                capture_host: HostId(1),
                src: HostId(1),
                dst: HostId(0),
                src_port: 40001,
                dst_port: 443,
                bytes: 99,
                packets: 1,
            },
        ];
        let mut buf = Vec::new();
        write_flows(&mut buf, &records[..1]).expect("write head");
        // A record cut off mid-object, as a crashed writer leaves behind.
        buf.extend_from_slice(b"{\"at\":123,\"capture_host\"\n");
        write_flows(&mut buf, &records[1..]).expect("write tail");
        let (back, stats) = read_flows(buf.as_slice()).expect("read");
        assert_eq!(back, records);
        assert_eq!(stats, ImportStats { ok: 2, skipped: 1 });
    }

    fn flow(at_secs: u64) -> FlowRecord {
        FlowRecord {
            at: SimTime::from_secs(at_secs),
            capture_host: HostId(0),
            src: HostId(0),
            dst: HostId(1),
            src_port: 40000,
            dst_port: 80,
            bytes: 1000 + at_secs,
            packets: 2,
        }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sonet-export-{}-{name}", std::process::id()))
    }

    #[test]
    fn spool_appends_and_reads_back() {
        let path = temp_path("basic.jsonl");
        let mut spool = TraceSpool::create(&path).expect("create");
        for s in 0..5 {
            spool.append(&flow(s)).expect("append");
        }
        assert_eq!(spool.sync().expect("sync"), 5);
        let (back, stats) = read_flows(File::open(&path).expect("open")).expect("read");
        assert_eq!(back.len(), 5);
        assert_eq!(stats.skipped, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn spool_recovery_truncates_torn_tail() {
        let path = temp_path("torn.jsonl");
        let mut spool = TraceSpool::create(&path).expect("create");
        for s in 0..3 {
            spool.append(&flow(s)).expect("append");
        }
        spool.sync().expect("sync");
        drop(spool);
        // A crash mid-write leaves a partial record with no newline.
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        f.write_all(b"{\"at\":999,\"cap").expect("tear");
        drop(f);

        let (mut spool, stats) = TraceSpool::recover(&path).expect("recover");
        assert_eq!(stats.lines, 3);
        assert!(stats.dropped_bytes > 0);
        spool.append(&flow(3)).expect("append after recovery");
        spool.sync().expect("sync");
        let (back, read_stats) = read_flows(File::open(&path).expect("open")).expect("read");
        assert_eq!(back.len(), 4, "recovered file must be clean JSONL");
        assert_eq!(read_stats.skipped, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn spool_resume_discards_post_checkpoint_records() {
        let path = temp_path("resume.jsonl");
        let mut spool = TraceSpool::create(&path).expect("create");
        for s in 0..4 {
            spool.append(&flow(s)).expect("append");
        }
        let at_checkpoint = spool.sync().expect("sync");
        // Records spooled after the checkpoint that never made it into one.
        spool.append(&flow(4)).expect("append");
        spool.append(&flow(5)).expect("append");
        spool.sync().expect("sync");
        drop(spool);

        let spool = TraceSpool::resume(&path, at_checkpoint).expect("resume");
        assert_eq!(spool.lines(), 4);
        drop(spool);
        let (back, _) = read_flows(File::open(&path).expect("open")).expect("read");
        assert_eq!(back.len(), 4);

        // A checkpoint claiming more lines than the file holds is corrupt.
        let err = TraceSpool::resume(&path, 10).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn matrix_csv_layout() {
        let m = vec![vec![1u64, 2], vec![3, 4]];
        let mut buf = Vec::new();
        write_matrix_csv(&mut buf, &m).expect("write");
        assert_eq!(String::from_utf8(buf).expect("utf8"), "1,2\n3,4\n");
    }
}
