//! Shared setup for the benchmark harness.
//!
//! Every bench regenerates its table/figure (printed to stdout as
//! paper-vs-measured) and then times the analysis stage with Criterion.
//! Set `SONET_BENCH_FAST=1` to run the whole suite on tiny plants in a
//! few seconds (CI smoke mode); the printed numbers are then noisier.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sonet_core::{Lab, LabConfig};

/// Seed used by the whole harness, so bench output is reproducible.
pub const BENCH_SEED: u64 = 42;

/// True when the suite runs in fast/smoke mode.
pub fn fast_mode() -> bool {
    std::env::var("SONET_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The lab configuration for benches (standard, or tiny in fast mode).
pub fn bench_config() -> LabConfig {
    if fast_mode() {
        LabConfig::fast(BENCH_SEED)
    } else {
        LabConfig::standard(BENCH_SEED)
    }
}

/// A lab ready for bench use.
pub fn bench_lab() -> Lab {
    Lab::new(bench_config())
}

/// Prints a bench banner so figure output is findable in logs.
pub fn banner(what: &str) {
    println!("\n================ {what} ================");
    if fast_mode() {
        println!("(SONET_BENCH_FAST=1: tiny plant, numbers are smoke-test grade)");
    }
}
