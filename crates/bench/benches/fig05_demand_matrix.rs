//! Figure 5: rack/cluster demand matrices (§4.3)
//!
//! Regenerates the result from the fleet-tier Fbflow day (printed as
//! paper-vs-measured) and times the analysis stage over the cached table.

use criterion::{criterion_group, criterion_main, Criterion};
use sonet_bench::{banner, bench_lab};
use sonet_core::reports;

fn bench(c: &mut Criterion) {
    banner("Figure 5: rack/cluster demand matrices (§4.3)");
    let mut lab = bench_lab();
    let report = lab.fig5();
    println!("{}", report.render());
    let fleet = lab.fleet();
    let mut g = c.benchmark_group("fig05_demand_matrix");
    g.sample_size(10);
    g.bench_function("analysis", |b| b.iter(|| reports::fig5(fleet)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
