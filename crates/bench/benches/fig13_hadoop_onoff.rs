//! Figure 13: Hadoop arrivals are not on/off (§6.2)
//!
//! Regenerates the result from a standard packet-tier capture (printed as
//! paper-vs-measured) and times the analysis stage over the cached trace.

use criterion::{criterion_group, criterion_main, Criterion};
use sonet_bench::{banner, bench_lab};
use sonet_core::reports;

fn bench(c: &mut Criterion) {
    banner("Figure 13: Hadoop arrivals are not on/off (§6.2)");
    let mut lab = bench_lab();
    let report = lab.fig13();
    if let Some(r) = report {
        println!("{}", r.render());
    }
    let cap = lab.capture();
    let mut g = c.benchmark_group("fig13_hadoop_onoff");
    g.sample_size(10);
    g.bench_function("analysis", |b| b.iter(|| reports::fig13(cap)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
