//! Figure 10: heavy-hitter stability (§5.3)
//!
//! Regenerates the result from a standard packet-tier capture (printed as
//! paper-vs-measured) and times the analysis stage over the cached trace.

use criterion::{criterion_group, criterion_main, Criterion};
use sonet_bench::{banner, bench_lab};
use sonet_core::reports;

fn bench(c: &mut Criterion) {
    banner("Figure 10: heavy-hitter stability (§5.3)");
    let mut lab = bench_lab();
    let report = lab.fig10();
    println!("{}", report.render());
    // §5.4's companion question: is that stability worth anything to TE?
    println!("{}", lab.te_predictability().render());
    let cap = lab.capture();
    let mut g = c.benchmark_group("fig10_hh_stability");
    g.sample_size(10);
    g.bench_function("analysis", |b| b.iter(|| reports::fig10(cap)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
