//! Engine micro-benchmarks: the hot paths underneath every experiment.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sonet_bench::banner;
use sonet_netsim::{NullTap, SimConfig, Simulator};
use sonet_topology::{ClusterSpec, Topology, TopologySpec};
use sonet_util::{EmpiricalCdf, Rng, SimDuration, SimTime};
use std::sync::Arc;

fn topo() -> Arc<Topology> {
    Arc::new(
        Topology::build(TopologySpec::single_dc(vec![
            ClusterSpec::frontend(16, 8),
            ClusterSpec::hadoop(8, 8),
        ]))
        .expect("valid"),
    )
}

fn bench(c: &mut Criterion) {
    banner("Engine micro-benchmarks");
    let topo = topo();

    // ECMP route computation across locality classes.
    let a = topo.racks()[0].hosts[0];
    let same_rack = topo.racks()[0].hosts[1];
    let same_cluster = topo.racks()[1].hosts[0];
    let hadoop = topo.hosts_with_role(sonet_topology::HostRole::Hadoop)[0];
    let mut g = c.benchmark_group("engine");
    g.bench_function("route_intra_rack", |b| {
        b.iter(|| topo.route(a, same_rack, 12345).expect("route"))
    });
    g.bench_function("route_intra_cluster", |b| {
        b.iter(|| topo.route(a, same_cluster, 12345).expect("route"))
    });
    g.bench_function("route_intra_dc", |b| {
        b.iter(|| topo.route(a, hadoop, 12345).expect("route"))
    });

    // Packet engine throughput: a 1-MB request/response exchange.
    g.bench_function("transfer_1mb", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap)
                    .expect("config");
                let conn = sim
                    .open_connection(SimTime::ZERO, a, same_cluster, 80)
                    .expect("open");
                sim.send_message(conn, SimTime::ZERO, 1 << 20, 1024, SimDuration::ZERO)
                    .expect("send");
                sim
            },
            |mut sim| {
                sim.run_to_quiescence();
                let (out, _) = sim.finish();
                out.delivered_packets
            },
            BatchSize::SmallInput,
        )
    });

    // Many small RPCs (the frontend's bread and butter).
    g.bench_function("rpc_1000_small", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap)
                    .expect("config");
                let conn = sim
                    .open_connection(SimTime::ZERO, a, same_cluster, 80)
                    .expect("open");
                for i in 0..1000u64 {
                    sim.send_message(
                        conn,
                        SimTime::from_micros(i * 10),
                        200,
                        800,
                        SimDuration::from_micros(50),
                    )
                    .expect("send");
                }
                sim
            },
            |mut sim| {
                sim.run_to_quiescence();
                let (out, _) = sim.finish();
                out.completed_requests
            },
            BatchSize::SmallInput,
        )
    });

    // Statistics substrate.
    let mut rng = Rng::new(7);
    let samples: Vec<f64> = (0..100_000).map(|_| rng.f64() * 1e6).collect();
    g.bench_function("cdf_build_100k", |b| {
        b.iter(|| EmpiricalCdf::new(samples.clone()))
    });
    let cdf = EmpiricalCdf::new(samples);
    g.bench_function("cdf_quantiles", |b| {
        b.iter(|| (cdf.quantile(10.0), cdf.quantile(50.0), cdf.quantile(90.0)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
