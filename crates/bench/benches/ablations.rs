//! Ablations of design choices DESIGN.md calls out:
//!
//! 1. **Fbflow sampling rate** — how much does 1:N sampling distort the
//!    locality breakdown that Tables 2–3 depend on?
//! 2. **Load-balancing quality** — §5.2 credits load balancing for rate
//!    stability; replace uniform cache selection with Zipf-skewed picks
//!    and watch per-destination-rack stability degrade.
//! 3. **Connection pooling** — §6.2 credits pooling for the cache tier's
//!    long SYN inter-arrivals; disable it and watch flow intensity jump.
//! 4. **Switch buffer sharing (DT alpha)** — the shared-buffer admission
//!    of §6.3; sweep alpha and observe the drop/occupancy trade-off.

use criterion::{criterion_group, criterion_main, Criterion};
use sonet_analysis::packets::syn_interarrival_cdf;
use sonet_analysis::rates::rack_rate_series;
use sonet_analysis::HostTrace;
use sonet_bench::{banner, fast_mode, BENCH_SEED};
use sonet_netsim::{BufferConfig, SimConfig, Simulator};
use sonet_telemetry::{FbflowConfig, FbflowSampler, PortMirror, Tagger};
use sonet_topology::{ClusterSpec, HostRole, Locality, Topology, TopologySpec};
use sonet_util::{Rng, SimDuration, SimTime};
use sonet_workload::profile::{DestSelector, PoolMode};
use sonet_workload::{HotObjectConfig, LoadBalance, ServiceProfiles, Workload};
use std::sync::Arc;

fn secs() -> u64 {
    if fast_mode() {
        2
    } else {
        8
    }
}

fn frontend_topo() -> Arc<Topology> {
    let (racks, hosts) = if fast_mode() { (6, 3) } else { (12, 5) };
    Arc::new(
        Topology::build(TopologySpec::single_dc(vec![
            ClusterSpec::frontend(racks, hosts),
            ClusterSpec::cache(2, hosts),
            ClusterSpec::service(2, hosts),
            ClusterSpec::database(2, hosts),
            ClusterSpec::hadoop(2, hosts),
        ]))
        .expect("valid"),
    )
}

/// Runs a frontend workload and returns the cache-follower trace.
fn run_cachef_trace(
    topo: &Arc<Topology>,
    profiles: ServiceProfiles,
) -> (HostTrace, sonet_netsim::SimOutputs) {
    let mut wl = Workload::new(Arc::clone(topo), profiles, BENCH_SEED).expect("workload");
    let host = wl
        .monitored_host(HostRole::CacheFollower)
        .expect("cache-f exists");
    let mirror = PortMirror::new(4_000_000);
    let mut sim = Simulator::new(Arc::clone(topo), SimConfig::default(), mirror).expect("config");
    sim.watch_link(topo.host_uplink(host));
    sim.watch_link(topo.host_downlink(host));
    let mut t = SimTime::ZERO;
    while t < SimTime::from_secs(secs()) {
        t += SimDuration::from_millis(250);
        wl.generate(&mut sim, t).expect("generate");
        sim.run_until(t);
    }
    let (out, mirror) = sim.finish();
    (HostTrace::from_mirror(mirror.records(), host), out)
}

// -----------------------------------------------------------------
// 1. Fbflow sampling-rate sensitivity
// -----------------------------------------------------------------

fn ablation_sampling(topo: &Arc<Topology>) {
    println!("\n-- ablation 1: Fbflow sampling rate vs locality accuracy --");
    let mut profiles = ServiceProfiles::default();
    profiles.rate_scale = if fast_mode() { 5.0 } else { 10.0 };

    // Ground truth (sampling 1:1) vs production-style 1:N.
    let mut truth_rack = None;
    println!("rate      samples   rack-local %   error vs 1:1");
    for rate in [1u64, 100, 1_000, 30_000] {
        let mut wl =
            Workload::new(Arc::clone(topo), profiles.clone(), BENCH_SEED).expect("workload");
        let sampler = FbflowSampler::new(
            topo,
            FbflowConfig {
                sampling_rate: rate,
            },
            Rng::new(9),
        );
        let mut sim =
            Simulator::new(Arc::clone(topo), SimConfig::default(), sampler).expect("config");
        FbflowSampler::deploy_fleet_wide(&mut sim, topo);
        let mut t = SimTime::ZERO;
        while t < SimTime::from_secs(secs()) {
            t += SimDuration::from_millis(250);
            wl.generate(&mut sim, t).expect("generate");
            sim.run_until(t);
        }
        let (_, sampler) = sim.finish();
        let n = sampler.samples().len();
        let table = Tagger::new(topo).ingest(sampler.into_samples());
        let rack = {
            let total = table.total_bytes().max(1);
            let by = table.bytes_by(|r| r.locality);
            *by.get(&Locality::IntraRack).unwrap_or(&0) as f64 / total as f64 * 100.0
        };
        let err = truth_rack.map(|t: f64| (rack - t).abs()).unwrap_or(0.0);
        if truth_rack.is_none() {
            truth_rack = Some(rack);
        }
        println!("1:{rate:<7} {n:>8}   {rack:>10.2}     {err:>6.2}");
    }
}

// -----------------------------------------------------------------
// 2. Load-balancing quality
// -----------------------------------------------------------------

fn ablation_load_balance(topo: &Arc<Topology>) {
    println!("\n-- ablation 2: load balancing & hot objects vs rate stability (§5.2) --");
    println!("scenario           within-2x-of-median %   significant-change %   mid90 span (dec)");
    // Hot-object rotation fast enough to churn several times per run.
    let rotation_ms = secs() * 1000 / 8;
    let hot = |mitigated: bool| HotObjectConfig {
        hot_fraction: 0.8,
        rotation: sonet_util::SimDuration::from_millis(rotation_ms),
        detect_after: sonet_util::SimDuration::from_millis(rotation_ms / 8),
        mitigated,
    };
    enum Case {
        Lb(LoadBalance),
        Hot(bool),
    }
    for (label, case) in [
        ("uniform", Case::Lb(LoadBalance::Uniform)),
        ("zipf(1.0)", Case::Lb(LoadBalance::Zipf { s: 1.0 })),
        ("hot, mitigated", Case::Hot(true)),
        ("hot, unmitigated", Case::Hot(false)),
    ] {
        let mut profiles = ServiceProfiles::default();
        profiles.rate_scale = if fast_mode() { 5.0 } else { 10.0 };
        match case {
            Case::Lb(lb) => {
                // Skew every web→cache pick.
                for p in &mut profiles.web {
                    if let DestSelector::RoleInCluster { role, lb: slot } = &mut p.dest {
                        if *role == HostRole::CacheFollower {
                            *slot = lb;
                        }
                    }
                }
            }
            Case::Hot(mitigated) => profiles.hot_objects = hot(mitigated),
        }
        let (trace, _) = run_cachef_trace(topo, profiles.clone());
        let series = rack_rate_series(&trace, topo, secs() as usize);
        let m = series.stability_metrics();
        // Cluster-wide: worst per-follower load spike (max-second over
        // median-second of that follower's serve bytes) — hot objects hit
        // whichever follower is "home", so the view must span all of them.
        let spike = follower_load_spike(topo, profiles, rotation_ms / 2);
        println!(
            "{label:<18} {:>18.1}   {:>18.1}   {:>12.2}   spike x{:.1}",
            m.fraction_within_2x_of_median * 100.0,
            m.fraction_significant_change * 100.0,
            m.median_mid90_span_decades,
            spike
        );
    }
}

/// Runs the workload while tracking every cache follower's uplink per
/// second; returns the worst (max/median) per-second load ratio across
/// followers — §5.2's "large increases in load would indicate the
/// presence of relatively hot objects".
fn follower_load_spike(topo: &Arc<Topology>, profiles: ServiceProfiles, interval_ms: u64) -> f64 {
    let mut wl = Workload::new(Arc::clone(topo), profiles, BENCH_SEED).expect("workload");
    let mut sim = Simulator::new(
        Arc::clone(topo),
        SimConfig::default(),
        sonet_netsim::NullTap,
    )
    .expect("config");
    let followers: Vec<_> = topo.hosts_with_role(HostRole::CacheFollower).to_vec();
    let links: Vec<_> = followers.iter().map(|&h| topo.host_uplink(h)).collect();
    sim.track_utilization(SimDuration::from_millis(interval_ms.max(50)), &links)
        .expect("valid interval");
    let mut t = SimTime::ZERO;
    while t < SimTime::from_secs(secs()) {
        t += SimDuration::from_millis(250);
        wl.generate(&mut sim, t).expect("generate");
        sim.run_until(t);
    }
    let (out, _) = sim.finish();
    let mut worst: f64 = 1.0;
    for l in links {
        let Some(series) = out.util_series.get(&l) else {
            continue;
        };
        let mut sorted: Vec<u64> = series.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2].max(1);
        let max = *sorted.last().expect("non-empty");
        worst = worst.max(max as f64 / median as f64);
    }
    worst
}

// -----------------------------------------------------------------
// 3. Connection pooling
// -----------------------------------------------------------------

fn ablation_pooling(topo: &Arc<Topology>) {
    println!("\n-- ablation 3: connection pooling vs flow intensity (§6.2) --");
    println!("pooling      median SYN inter-arrival (ms)   SYNs observed");
    for (label, mode) in [
        ("all pooled", Some(PoolMode::Pooled)),
        ("default mix", None),
        ("none pooled", Some(PoolMode::Ephemeral)),
    ] {
        let mut profiles = ServiceProfiles::default();
        profiles.rate_scale = if fast_mode() { 5.0 } else { 10.0 };
        if let Some(mode) = mode {
            for list in [
                &mut profiles.web,
                &mut profiles.cache_follower,
                &mut profiles.cache_leader,
                &mut profiles.multifeed,
                &mut profiles.misc,
            ] {
                for p in list.iter_mut() {
                    p.pool = mode;
                }
            }
        }
        let (trace, _) = run_cachef_trace(topo, profiles);
        let syns = trace
            .outbound()
            .iter()
            .filter(|o| o.kind == sonet_netsim::PacketKind::Syn)
            .count();
        let cdf = syn_interarrival_cdf(&trace);
        let median_ms = cdf.median().map(|v| v / 1000.0).unwrap_or(f64::NAN);
        println!("{label:<12} {median_ms:>14.2}   {syns:>10}");
    }
}

// -----------------------------------------------------------------
// 4. Shared-buffer DT alpha sweep
// -----------------------------------------------------------------

fn ablation_buffer_alpha(topo: &Arc<Topology>) {
    println!("\n-- ablation 4: DT alpha vs drops under incast (§6.3) --");
    println!("alpha    buffer    egress drops   completed");
    for (alpha, shared) in [
        (0.25, 1u64 << 20),
        (1.0, 1 << 20),
        (4.0, 1 << 20),
        (1.0, 12 << 20),
    ] {
        let mut cfg = SimConfig::default();
        cfg.rsw_buffer = BufferConfig {
            shared_bytes: shared,
            alpha,
        };
        let mut sim = Simulator::new(Arc::clone(topo), cfg, sonet_netsim::NullTap).expect("config");
        // Incast: many hosts burst into one web host.
        let dst = topo.hosts_with_role(HostRole::Web)[0];
        let senders: Vec<_> = topo
            .hosts_with_role(HostRole::Web)
            .iter()
            .copied()
            .filter(|&h| h != dst)
            .take(24)
            .collect();
        for &src in &senders {
            let c = sim
                .open_connection(SimTime::ZERO, src, dst, 80)
                .expect("open");
            sim.send_message(c, SimTime::from_micros(5), 400_000, 0, SimDuration::ZERO)
                .expect("send");
        }
        sim.run_to_quiescence();
        let down = topo.host_downlink(dst);
        let drops = sim.link_counters(down).drop_packets;
        let (out, _) = sim.finish();
        println!(
            "{alpha:<6}  {:>6} MB  {drops:>12}   {:>9}",
            shared >> 20,
            out.completed_requests
        );
    }
}

fn bench(c: &mut Criterion) {
    banner("Ablations: sampling rate, load balancing, pooling, buffer alpha");
    let topo = frontend_topo();
    ablation_sampling(&topo);
    ablation_load_balance(&topo);
    ablation_pooling(&topo);
    ablation_buffer_alpha(&topo);

    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("cachef_trace_1s", |b| {
        b.iter(|| {
            let mut profiles = ServiceProfiles::default();
            profiles.rate_scale = 2.0;
            run_cachef_trace(&topo, profiles)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
