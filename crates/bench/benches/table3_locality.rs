//! Table 3: traffic locality by cluster type (§4.3)
//!
//! Regenerates the result from the fleet-tier Fbflow day (printed as
//! paper-vs-measured) and times the analysis stage over the cached table.

use criterion::{criterion_group, criterion_main, Criterion};
use sonet_bench::{banner, bench_lab};
use sonet_core::reports;

fn bench(c: &mut Criterion) {
    banner("Table 3: traffic locality by cluster type (§4.3)");
    let mut lab = bench_lab();
    let report = lab.table3();
    println!("{}", report.render());
    let fleet = lab.fleet();
    let mut g = c.benchmark_group("table3_locality");
    g.sample_size(10);
    g.bench_function("analysis", |b| b.iter(|| reports::table3(fleet)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
