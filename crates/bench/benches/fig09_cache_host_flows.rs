//! Figure 9: cache-follower per-host flow sizes (§5.1)
//!
//! Regenerates the result from a standard packet-tier capture (printed as
//! paper-vs-measured) and times the analysis stage over the cached trace.

use criterion::{criterion_group, criterion_main, Criterion};
use sonet_bench::{banner, bench_lab};
use sonet_core::reports;

fn bench(c: &mut Criterion) {
    banner("Figure 9: cache-follower per-host flow sizes (§5.1)");
    let mut lab = bench_lab();
    let report = lab.fig9();
    if let Some(r) = report {
        println!("{}", r.render());
    }
    let cap = lab.capture();
    let mut g = c.benchmark_group("fig09_cache_host_flows");
    g.sample_size(10);
    g.bench_function("analysis", |b| b.iter(|| reports::fig9(cap)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
