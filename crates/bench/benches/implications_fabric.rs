//! §4.4's implications for connection fabrics, tested in simulation:
//!
//! * "The low utilization levels found at the edge of the network
//!   reinforce common practice of oversubscribing the aggregation and
//!   core" — sweep the RSW→CSW uplink rate downward and watch RPC
//!   latencies and drops stay flat until the fabric is cut far below the
//!   nominal 4 × 10 Gbps.
//! * "RSWs that deliver something less than full non-blocking line-rate
//!   connectivity between all of their ports may be viable."
//! * The Fabric migration (§3.1 \[9\]): the same workload on a pod-based
//!   plant with uniform spine provisioning performs equivalently.

use criterion::{criterion_group, criterion_main, Criterion};
use sonet_bench::{banner, fast_mode, BENCH_SEED};
use sonet_netsim::{NullTap, SimConfig, Simulator};
use sonet_topology::{fabric_like_spec, ClusterSpec, Topology, TopologySpec};
use sonet_util::{percentile, SimDuration, SimTime};
use sonet_workload::{ServiceProfiles, Workload};
use std::sync::Arc;

fn secs() -> u64 {
    if fast_mode() {
        2
    } else {
        6
    }
}

fn base_spec() -> TopologySpec {
    let (fe, hosts) = if fast_mode() { (6, 3) } else { (12, 5) };
    TopologySpec::single_dc(vec![
        ClusterSpec::frontend(fe, hosts),
        ClusterSpec::cache(2, hosts),
        ClusterSpec::service(2, hosts),
        ClusterSpec::database(2, hosts),
        ClusterSpec::hadoop(4, hosts),
    ])
}

struct Outcome {
    p50_us: f64,
    p99_us: f64,
    drops: u64,
    completed: u64,
}

fn run(spec: TopologySpec) -> Outcome {
    let topo = Arc::new(Topology::build(spec).expect("valid spec"));
    let mut profiles = ServiceProfiles::default();
    profiles.rate_scale = if fast_mode() { 5.0 } else { 10.0 };
    let mut wl = Workload::new(Arc::clone(&topo), profiles, BENCH_SEED).expect("workload");
    let mut sim = Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("config");
    sim.record_latencies(true);
    let mut t = SimTime::ZERO;
    while t < SimTime::from_secs(secs()) {
        t += SimDuration::from_millis(250);
        wl.generate(&mut sim, t).expect("generate");
        sim.run_until(t);
    }
    let (out, _) = sim.finish();
    let lat_us: Vec<f64> = out
        .rpc_latencies
        .iter()
        .map(|d| d.as_nanos() as f64 / 1e3)
        .collect();
    Outcome {
        p50_us: percentile(&lat_us, 50.0).unwrap_or(f64::NAN),
        p99_us: percentile(&lat_us, 99.0).unwrap_or(f64::NAN),
        drops: out.link_counters.iter().map(|c| c.drop_packets).sum(),
        completed: out.completed_requests,
    }
}

fn bench(c: &mut Criterion) {
    banner("Implications (§4.4): oversubscription sweep + Fabric migration");

    println!("\n-- RSW uplink provisioning sweep (nominal 4 x 10 Gbps) --");
    println!("uplink Gbps   RPC p50 (us)   RPC p99 (us)   drops   completed");
    for gbps in [10.0, 5.0, 2.5, 1.25, 0.5] {
        let mut spec = base_spec();
        spec.rsw_uplink_gbps = gbps;
        let o = run(spec);
        println!(
            "{gbps:<12} {:>12.0} {:>14.0} {:>7} {:>11}",
            o.p50_us, o.p99_us, o.drops, o.completed
        );
    }

    println!("\n-- 4-post clusters vs Fabric pods (same hosts, same workload) --");
    println!("plant        RPC p50 (us)   RPC p99 (us)   drops   completed");
    let four_post = run(base_spec());
    println!(
        "4-post       {:>12.0} {:>14.0} {:>7} {:>11}",
        four_post.p50_us, four_post.p99_us, four_post.drops, four_post.completed
    );
    let fabric = run(fabric_like_spec(&base_spec()));
    println!(
        "fabric       {:>12.0} {:>14.0} {:>7} {:>11}",
        fabric.p50_us, fabric.p99_us, fabric.drops, fabric.completed
    );

    let mut g = c.benchmark_group("implications_fabric");
    g.sample_size(10);
    g.bench_function("frontend_run_1s", |b| {
        b.iter(|| {
            let topo = Arc::new(Topology::build(base_spec()).expect("valid"));
            let mut profiles = ServiceProfiles::default();
            profiles.rate_scale = 2.0;
            let mut wl = Workload::new(Arc::clone(&topo), profiles, BENCH_SEED).expect("workload");
            let mut sim =
                Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("config");
            wl.generate(&mut sim, SimTime::from_secs(1))
                .expect("generate");
            sim.run_until(SimTime::from_secs(1));
            let (out, _) = sim.finish();
            out.delivered_packets
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
