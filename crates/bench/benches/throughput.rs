//! Machine-readable throughput benchmark.
//!
//! Measures the three rates the performance work is judged on — engine
//! events/sec, fleet-tier records/sec (generation + tagging), and
//! end-to-end scenario wall time (fleet generate + tag + Table 3 +
//! Fig 5) — and writes them to `BENCH.json` for CI to archive and
//! regression-check against `crates/bench/BENCH-baseline.json`.
//!
//! ```text
//! cargo bench -p sonet-bench --bench throughput -- --threads 2
//! SONET_BENCH_FAST=1 cargo bench -p sonet-bench --bench throughput
//! ```
//!
//! `--threads N` (or `SONET_THREADS=N`) sets the worker-pool width; the
//! outputs are byte-identical for every value, only the rates move.
//! `SONET_BENCH_OUT` overrides the output path (default `BENCH.json`).

use sonet_bench::{banner, fast_mode, BENCH_SEED};
use sonet_core::reports;
use sonet_core::scenario::{packet_tier_spec, ScenarioScale};
use sonet_core::{FleetData, FleetRunConfig};
use sonet_netsim::{FidelityConfig, NullTap, SimConfig, Simulator};
use sonet_topology::{ClusterSpec, DatacenterSpec, HostRole, SiteSpec, Topology, TopologySpec};
use sonet_util::obs::{self, ObsMode};
use sonet_util::{par, SimDuration, SimTime};
use sonet_workload::{ServiceProfiles, Workload};
use std::sync::Arc;
use std::time::Instant;

/// One timed measurement, printed and serialized.
struct Measurement {
    engine_events: u64,
    engine_secs: f64,
    fleet_records: u64,
    fleet_generate_secs: f64,
    analysis_secs: f64,
}

impl Measurement {
    fn events_per_sec(&self) -> f64 {
        self.engine_events as f64 / self.engine_secs.max(1e-9)
    }

    fn records_per_sec(&self) -> f64 {
        self.fleet_records as f64 / self.fleet_generate_secs.max(1e-9)
    }

    fn scenario_wall_secs(&self) -> f64 {
        self.fleet_generate_secs + self.analysis_secs
    }
}

/// Engine throughput: drive the packet-tier workload on its plant for a
/// few simulated seconds and count calendar events per wall second.
fn bench_engine(scale: ScenarioScale, sim_secs: u64) -> (u64, f64) {
    let topo = Arc::new(Topology::build(packet_tier_spec(scale)).expect("preset spec"));
    let mut workload = Workload::new(Arc::clone(&topo), ServiceProfiles::default(), BENCH_SEED)
        .expect("preset workload");
    let mut sim =
        Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("preset sim");
    let start = Instant::now();
    for s in 1..=sim_secs {
        let t = SimTime::from_secs(s);
        workload.generate(&mut sim, t).expect("generation");
        sim.run_until(t);
    }
    let events = sim.processed_events();
    (events, start.elapsed().as_secs_f64())
}

/// One width's partitioned-engine measurement.
struct PartWidth {
    threads: usize,
    events: u64,
    secs: f64,
    barriers: u64,
    /// Partition calendars stolen off another worker's deque.
    steals: u64,
    /// Partition count under the granularity this run resolved.
    partitions: usize,
    /// Measured worker utilization: wall time the pool's workers spent
    /// draining calendars divided by (width × the pool's elapsed wall
    /// time across all windows). 1.0 = no idle gaps; low values mean
    /// workers starved waiting at barriers. Unlike an event-count proxy,
    /// this moves with the width: more workers racing the same windows
    /// means more idle time unless stealing rebalances them.
    barrier_util: f64,
}

impl PartWidth {
    fn rate(&self) -> f64 {
        self.events as f64 / self.secs.max(1e-9)
    }
}

/// A four-datacenter plant: the partitioned engine runs one event
/// calendar per cluster (plus per-DC hub and backbone calendars),
/// synchronized at barriers whose horizon is the minimum cross-partition
/// bound over pairs with pending cross traffic.
fn four_dc_topo(fast: bool) -> Arc<Topology> {
    let (fr, fh, cr, ch) = if fast { (4, 3, 2, 3) } else { (6, 8, 4, 8) };
    let dc = || SiteSpec {
        datacenters: vec![DatacenterSpec {
            clusters: vec![ClusterSpec::frontend(fr, fh), ClusterSpec::cache(cr, ch)],
        }],
    };
    let spec = TopologySpec {
        sites: vec![dc(), dc(), dc(), dc()],
        ..TopologySpec::default()
    };
    Arc::new(Topology::build(spec).expect("bench spec"))
}

/// Seeds the paper's frontend locality mix (Table 3): every web server
/// keeps a steady request train to a cache follower in its *own*
/// cluster, and one in four adds a sparse miss train to a cache leader
/// in a *different* datacenter. The intra-cluster bulk never straddles a
/// partition at cluster granularity, so those calendars run in wide
/// windows; the thin cross-DC tail is what the per-pair lookahead has to
/// fence. Returns the horizon the caller should run to.
fn seed_locality_mix(sim: &mut Simulator<NullTap>, topo: &Arc<Topology>, fast: bool) -> SimTime {
    let webs = topo.hosts_with_role(HostRole::Web);
    let leaders = topo.hosts_with_role(HostRole::CacheLeader);
    let horizon = if fast {
        SimTime::from_millis(250)
    } else {
        SimTime::from_secs(1)
    };
    for (i, &w) in webs.iter().enumerate() {
        let host = topo.host(w);
        let followers = topo.hosts_with_role_in_cluster(host.cluster, HostRole::CacheFollower);
        let t0 = SimTime::from_micros(i as u64 * 17);
        let c = sim
            .open_connection(t0, w, followers[i % followers.len()], 11211)
            .expect("open");
        // The intra-cluster request train: bulk of the event volume.
        let mut t = t0;
        let mut m = 0u64;
        while t < horizon {
            sim.send_message(
                c,
                t,
                4_000 + (m % 7) * 800,
                1_500,
                SimDuration::from_micros(60),
            )
            .expect("send");
            t += SimDuration::from_micros(1_900);
            m += 1;
        }
        if i % 4 == 0 {
            // The cross-DC miss train: an order of magnitude sparser.
            let remote: Vec<_> = leaders
                .iter()
                .copied()
                .filter(|&l| topo.host(l).datacenter != host.datacenter)
                .collect();
            let l = remote[(i / 4) % remote.len()];
            let t0 = t0 + SimDuration::from_micros(7);
            let c = sim.open_connection(t0, w, l, 11211).expect("open");
            let mut t = t0;
            while t < horizon {
                sim.send_message(c, t, 6_200, 1_500, SimDuration::from_micros(120))
                    .expect("send");
                t += SimDuration::from_micros(19_000);
            }
        }
    }
    horizon
}

/// Partitioned capture-tier throughput at one worker width, driven
/// through one `run_until` horizon. The workload is identical for every
/// width — so are all outputs; only the wall clock moves.
fn bench_partitioned(topo: &Arc<Topology>, width: usize, fast: bool) -> (PartWidth, String) {
    let mut sim =
        Simulator::new(Arc::clone(topo), SimConfig::default(), NullTap).expect("bench sim");
    sim.set_parallel_width(Some(width));
    let horizon = seed_locality_mix(&mut sim, topo, fast);
    let start = Instant::now();
    sim.run_until(horizon);
    let secs = start.elapsed().as_secs_f64();
    let events = sim.processed_events();
    let stats = sim.parallel_stats();
    let util = if stats.wall_ns > 0 {
        stats.busy_ns as f64 / (width as f64 * stats.wall_ns as f64)
    } else {
        1.0
    };
    let n_parts = sim.partitions();
    let (out, _) = sim.finish();
    (
        PartWidth {
            threads: width,
            events,
            secs,
            barriers: stats.barriers,
            steals: stats.steals,
            partitions: n_parts,
            barrier_util: util,
        },
        serde_json::to_string(&out).expect("json"),
    )
}

/// Packet vs hybrid fidelity on the same bulk workload, both at width 1.
struct HybridBench {
    packet_events: u64,
    packet_secs: f64,
    hybrid_events: u64,
    hybrid_secs: f64,
    completed_requests: u64,
    flows_fast: u64,
}

impl HybridBench {
    /// Wall-clock speedup for the same simulated traffic and horizon.
    /// Raw events/sec is meaningless across fidelity modes — the fast
    /// path retires whole transfers analytically, so the hybrid run
    /// *has* far fewer events; what matters is how much faster it covers
    /// the identical workload.
    fn wall_speedup(&self) -> f64 {
        self.packet_secs / self.hybrid_secs.max(1e-9)
    }

    /// Packet-equivalent throughput: the packet run's event volume
    /// retired per hybrid wall second. This is the ≥5× gate's currency.
    fn equiv_events_sec(&self) -> f64 {
        self.packet_events as f64 / self.hybrid_secs.max(1e-9)
    }
}

/// Hybrid fast-path speedup: the locality-mix bulk workload — no
/// mirrors, no buffer watchers, no faults, every message well under the
/// heavy-hitter threshold, so nothing carves a fidelity island — run
/// serially once on the packet engine and once with the flow-level fast
/// path. Both runs must complete the same requests; the hybrid run just
/// skips the per-packet event train to get there. Interleaved best-of-N
/// in this process, like the obs bench: the hybrid leg finishes in
/// milliseconds on the fast-mode plant, and a single noisy sample must
/// not swing a ≥5× ratio gate.
fn bench_hybrid(topo: &Arc<Topology>, fast: bool, rounds: u32) -> HybridBench {
    let run = |hybrid: bool| {
        let mut sim =
            Simulator::new(Arc::clone(topo), SimConfig::default(), NullTap).expect("bench sim");
        sim.set_parallel_width(Some(1));
        if hybrid {
            sim.set_fidelity(FidelityConfig::hybrid())
                .expect("fidelity");
        }
        let horizon = seed_locality_mix(&mut sim, topo, fast);
        let start = Instant::now();
        sim.run_until(horizon);
        let secs = start.elapsed().as_secs_f64();
        let events = sim.processed_events();
        let (out, _) = sim.finish();
        (events, secs, out)
    };
    let (packet_events, mut packet_secs, pout) = run(false);
    let (hybrid_events, mut hybrid_secs, hout) = run(true);
    for _ in 1..rounds {
        packet_secs = packet_secs.min(run(false).1);
        hybrid_secs = hybrid_secs.min(run(true).1);
    }
    assert_eq!(
        pout.completed_requests, hout.completed_requests,
        "hybrid must complete the same requests as packet"
    );
    assert_eq!(
        hout.flows_packet, 0,
        "the bulk workload must not carve fidelity islands"
    );
    HybridBench {
        packet_events,
        packet_secs,
        hybrid_events,
        hybrid_secs,
        completed_requests: hout.completed_requests,
        flows_fast: hout.flows_fast,
    }
}

/// Flight-recorder overhead: the same serial engine workload with the
/// recorder off and at `--obs summary`, interleaved best-of-N in this
/// process. Comparing sibling runs (not the committed baseline) keeps
/// the ≤2% overhead gate insensitive to how fast the runner itself is.
fn bench_obs_overhead(scale: ScenarioScale, sim_secs: u64, rounds: u32) -> (f64, f64) {
    let run_at = |mode: ObsMode| {
        obs::set_mode(mode);
        let (events, secs) = bench_engine(scale, sim_secs);
        obs::set_mode(ObsMode::Off);
        events as f64 / secs.max(1e-9)
    };
    let mut off = 0.0f64;
    let mut summary = 0.0f64;
    for _ in 0..rounds {
        off = off.max(run_at(ObsMode::Off));
        summary = summary.max(run_at(ObsMode::Summary));
    }
    (off, summary)
}

/// Fleet tier: generation + tagging rate, then the analysis stage
/// (Table 3 + Fig 5) on the resulting table.
fn bench_fleet(cfg: &FleetRunConfig, threads: Option<usize>) -> (u64, f64, f64) {
    let start = Instant::now();
    let fleet = FleetData::run_with(cfg, threads).expect("preset fleet config");
    let generate_secs = start.elapsed().as_secs_f64();
    let records = fleet.table.len() as u64;
    let start = Instant::now();
    let t3 = reports::table3(&fleet);
    let f5 = reports::fig5(&fleet).expect("preset plants have all cluster types");
    assert!(t3.table.all.bytes > 0 && f5.hadoop.diagonal_fraction >= 0.0);
    let analysis_secs = start.elapsed().as_secs_f64();
    (records, generate_secs, analysis_secs)
}

fn json(
    m: &Measurement,
    threads: usize,
    partitioned: &[PartWidth],
    partitions: usize,
    obs_rates: (f64, f64),
    hybrid: &HybridBench,
) -> String {
    // The per-width rate fields are deliberately NOT named
    // "events_per_sec": CI greps that exact key for the serial
    // regression check and must keep matching exactly one line.
    let widths: Vec<String> = partitioned
        .iter()
        .map(|p| {
            format!(
                "    {{ \"threads\": {}, \"events\": {}, \"secs\": {:.6}, \
                 \"rate\": {:.1}, \"barriers\": {}, \"steal_count\": {}, \
                 \"partitions\": {}, \"barrier_util\": {:.4} }}",
                p.threads,
                p.events,
                p.secs,
                p.rate(),
                p.barriers,
                p.steals,
                p.partitions,
                p.barrier_util,
            )
        })
        .collect();
    let speedup = match (partitioned.first(), partitioned.last()) {
        (Some(w1), Some(wn)) if w1.threads != wn.threads => wn.rate() / w1.rate().max(1e-9),
        _ => 1.0,
    };
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let part_block = format!(
        "  \"partitioned\": {{\n    \"partitions\": {partitions},\n    \"cores\": {cores},\n    \
         \"widths\": [\n{}\n    ],\n    \"speedup_max_over_w1\": {speedup:.3}\n  }}",
        widths.join(",\n"),
    );
    // The obs keys avoid the substrings CI greps for elsewhere
    // ("events_per_sec", the per-width "rate" lines): the overhead gate
    // matches "overhead_pct" and nothing else may.
    let (off, summary) = obs_rates;
    let obs_block = format!(
        "  \"obs\": {{\n    \"off_events_sec\": {off:.1},\n    \
         \"summary_events_sec\": {summary:.1},\n    \
         \"overhead_pct\": {:.2}\n  }}",
        (off - summary) / off.max(1e-9) * 100.0,
    );
    // Same key-naming discipline: no substring of "events_per_sec", no
    // `"rate": ` on a line with a `"threads":` key. CI's hybrid gate
    // matches "wall_speedup_over_packet" and nothing else may.
    let hybrid_block = format!(
        "  \"hybrid\": {{\n    \"packet_events\": {},\n    \"packet_secs\": {:.6},\n    \
         \"hybrid_events\": {},\n    \"hybrid_secs\": {:.6},\n    \
         \"completed_requests\": {},\n    \"flows_fast\": {},\n    \
         \"equiv_events_sec\": {:.1},\n    \"wall_speedup_over_packet\": {:.3}\n  }}",
        hybrid.packet_events,
        hybrid.packet_secs,
        hybrid.hybrid_events,
        hybrid.hybrid_secs,
        hybrid.completed_requests,
        hybrid.flows_fast,
        hybrid.equiv_events_sec(),
        hybrid.wall_speedup(),
    );
    format!(
        "{{\n  \"schema\": 5,\n  \"threads\": {},\n  \"fast\": {},\n  \
         \"engine_events\": {},\n  \"engine_secs\": {:.6},\n  \
         \"events_per_sec\": {:.1},\n  \"fleet_records\": {},\n  \
         \"fleet_generate_secs\": {:.6},\n  \"fleet_records_per_sec\": {:.1},\n  \
         \"analysis_secs\": {:.6},\n  \"scenario_wall_secs\": {:.6},\n{},\n{},\n{}\n}}\n",
        threads,
        fast_mode(),
        m.engine_events,
        m.engine_secs,
        m.events_per_sec(),
        m.fleet_records,
        m.fleet_generate_secs,
        m.records_per_sec(),
        m.analysis_secs,
        m.scenario_wall_secs(),
        part_block,
        obs_block,
        hybrid_block,
    )
}

fn main() {
    // Criterion-style flag noise (`--bench`) is ignored; only --threads
    // matters here.
    let args: Vec<String> = std::env::args().collect();
    let mut threads: Option<usize> = std::env::var("SONET_THREADS")
        .ok()
        .and_then(|v| v.parse().ok());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            threads = it.next().and_then(|v| v.parse().ok());
        }
    }
    if let Some(n) = threads {
        par::set_threads(n);
    }
    let resolved = par::resolve_threads(threads);

    banner("Throughput (machine-readable: BENCH.json)");
    let (scale, sim_secs, fleet_cfg) = if fast_mode() {
        (ScenarioScale::Tiny, 2, FleetRunConfig::fast(BENCH_SEED))
    } else {
        (
            ScenarioScale::Standard,
            4,
            FleetRunConfig::standard(BENCH_SEED),
        )
    };

    let (engine_events, engine_secs) = bench_engine(scale, sim_secs);

    // Partitioned engine: the same locality-mix workload at widths 1, 2,
    // 8. Outputs must not move by a byte; only the wall clock may.
    let four_dc = four_dc_topo(fast_mode());
    let mut partitioned = Vec::new();
    let mut golden: Option<String> = None;
    let mut partitions = 0;
    for width in [1usize, 2, 8] {
        let (pw, out) = bench_partitioned(&four_dc, width, fast_mode());
        match &golden {
            None => golden = Some(out),
            Some(g) => assert_eq!(g, &out, "width {width} changed the outputs"),
        }
        println!(
            "partitioned width {}: {:.0} events/s ({} events / {:.2}s), {} barriers, \
             {} steals, barrier util {:.2}",
            pw.threads,
            pw.rate(),
            pw.events,
            pw.secs,
            pw.barriers,
            pw.steals,
            pw.barrier_util,
        );
        partitions = pw.partitions;
        partitioned.push(pw);
    }

    // Hybrid fidelity vs packet on the same bulk mix, both width 1.
    let hybrid = bench_hybrid(&four_dc, fast_mode(), if fast_mode() { 5 } else { 3 });
    println!(
        "hybrid fidelity: packet {} events / {:.2}s, hybrid {} events / {:.2}s, \
         {} flows fast, {:.1}x wall speedup ({:.0} packet-equivalent events/s)",
        hybrid.packet_events,
        hybrid.packet_secs,
        hybrid.hybrid_events,
        hybrid.hybrid_secs,
        hybrid.flows_fast,
        hybrid.wall_speedup(),
        hybrid.equiv_events_sec(),
    );
    assert!(
        hybrid.wall_speedup() >= 5.0,
        "hybrid fast path must cover the bulk workload at least 5x faster than packet \
         (measured {:.2}x)",
        hybrid.wall_speedup(),
    );

    // Flight-recorder overhead on the serial engine, off vs summary.
    let rounds = if fast_mode() { 5 } else { 3 };
    let (obs_off, obs_summary) = bench_obs_overhead(scale, sim_secs, rounds);
    println!(
        "obs overhead: off {:.0} events/s, summary {:.0} events/s ({:+.2}%)",
        obs_off,
        obs_summary,
        (obs_off - obs_summary) / obs_off.max(1e-9) * 100.0,
    );

    let (fleet_records, fleet_generate_secs, analysis_secs) = bench_fleet(&fleet_cfg, threads);
    let m = Measurement {
        engine_events,
        engine_secs,
        fleet_records,
        fleet_generate_secs,
        analysis_secs,
    };

    println!(
        "threads {}: engine {:.0} events/s ({} events / {:.2}s), fleet {:.0} records/s \
         ({} records / {:.2}s), analysis {:.2}s, scenario wall {:.2}s",
        resolved,
        m.events_per_sec(),
        m.engine_events,
        m.engine_secs,
        m.records_per_sec(),
        m.fleet_records,
        m.fleet_generate_secs,
        m.analysis_secs,
        m.scenario_wall_secs(),
    );

    let out = std::env::var("SONET_BENCH_OUT").unwrap_or_else(|_| "BENCH.json".to_string());
    std::fs::write(
        &out,
        json(
            &m,
            resolved,
            &partitioned,
            partitions,
            (obs_off, obs_summary),
            &hybrid,
        ),
    )
    .expect("write BENCH.json");
    println!("wrote {out}");
}
