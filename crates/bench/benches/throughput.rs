//! Machine-readable throughput benchmark.
//!
//! Measures the three rates the performance work is judged on — engine
//! events/sec, fleet-tier records/sec (generation + tagging), and
//! end-to-end scenario wall time (fleet generate + tag + Table 3 +
//! Fig 5) — and writes them to `BENCH.json` for CI to archive and
//! regression-check against `crates/bench/BENCH-baseline.json`.
//!
//! ```text
//! cargo bench -p sonet-bench --bench throughput -- --threads 2
//! SONET_BENCH_FAST=1 cargo bench -p sonet-bench --bench throughput
//! ```
//!
//! `--threads N` (or `SONET_THREADS=N`) sets the worker-pool width; the
//! outputs are byte-identical for every value, only the rates move.
//! `SONET_BENCH_OUT` overrides the output path (default `BENCH.json`).

use sonet_bench::{banner, fast_mode, BENCH_SEED};
use sonet_core::reports;
use sonet_core::scenario::{packet_tier_spec, ScenarioScale};
use sonet_core::{FleetData, FleetRunConfig};
use sonet_netsim::{NullTap, SimConfig, Simulator};
use sonet_topology::Topology;
use sonet_util::{par, SimTime};
use sonet_workload::{ServiceProfiles, Workload};
use std::sync::Arc;
use std::time::Instant;

/// One timed measurement, printed and serialized.
struct Measurement {
    engine_events: u64,
    engine_secs: f64,
    fleet_records: u64,
    fleet_generate_secs: f64,
    analysis_secs: f64,
}

impl Measurement {
    fn events_per_sec(&self) -> f64 {
        self.engine_events as f64 / self.engine_secs.max(1e-9)
    }

    fn records_per_sec(&self) -> f64 {
        self.fleet_records as f64 / self.fleet_generate_secs.max(1e-9)
    }

    fn scenario_wall_secs(&self) -> f64 {
        self.fleet_generate_secs + self.analysis_secs
    }
}

/// Engine throughput: drive the packet-tier workload on its plant for a
/// few simulated seconds and count calendar events per wall second.
fn bench_engine(scale: ScenarioScale, sim_secs: u64) -> (u64, f64) {
    let topo = Arc::new(Topology::build(packet_tier_spec(scale)).expect("preset spec"));
    let mut workload = Workload::new(Arc::clone(&topo), ServiceProfiles::default(), BENCH_SEED)
        .expect("preset workload");
    let mut sim =
        Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("preset sim");
    let start = Instant::now();
    for s in 1..=sim_secs {
        let t = SimTime::from_secs(s);
        workload.generate(&mut sim, t).expect("generation");
        sim.run_until(t);
    }
    let events = sim.processed_events();
    (events, start.elapsed().as_secs_f64())
}

/// Fleet tier: generation + tagging rate, then the analysis stage
/// (Table 3 + Fig 5) on the resulting table.
fn bench_fleet(cfg: &FleetRunConfig, threads: Option<usize>) -> (u64, f64, f64) {
    let start = Instant::now();
    let fleet = FleetData::run_with(cfg, threads).expect("preset fleet config");
    let generate_secs = start.elapsed().as_secs_f64();
    let records = fleet.table.len() as u64;
    let start = Instant::now();
    let t3 = reports::table3(&fleet);
    let f5 = reports::fig5(&fleet).expect("preset plants have all cluster types");
    assert!(t3.table.all.bytes > 0 && f5.hadoop.diagonal_fraction >= 0.0);
    let analysis_secs = start.elapsed().as_secs_f64();
    (records, generate_secs, analysis_secs)
}

fn json(m: &Measurement, threads: usize) -> String {
    format!(
        "{{\n  \"schema\": 1,\n  \"threads\": {},\n  \"fast\": {},\n  \
         \"engine_events\": {},\n  \"engine_secs\": {:.6},\n  \
         \"events_per_sec\": {:.1},\n  \"fleet_records\": {},\n  \
         \"fleet_generate_secs\": {:.6},\n  \"fleet_records_per_sec\": {:.1},\n  \
         \"analysis_secs\": {:.6},\n  \"scenario_wall_secs\": {:.6}\n}}\n",
        threads,
        fast_mode(),
        m.engine_events,
        m.engine_secs,
        m.events_per_sec(),
        m.fleet_records,
        m.fleet_generate_secs,
        m.records_per_sec(),
        m.analysis_secs,
        m.scenario_wall_secs(),
    )
}

fn main() {
    // Criterion-style flag noise (`--bench`) is ignored; only --threads
    // matters here.
    let args: Vec<String> = std::env::args().collect();
    let mut threads: Option<usize> = std::env::var("SONET_THREADS")
        .ok()
        .and_then(|v| v.parse().ok());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            threads = it.next().and_then(|v| v.parse().ok());
        }
    }
    if let Some(n) = threads {
        par::set_threads(n);
    }
    let resolved = par::resolve_threads(threads);

    banner("Throughput (machine-readable: BENCH.json)");
    let (scale, sim_secs, fleet_cfg) = if fast_mode() {
        (ScenarioScale::Tiny, 2, FleetRunConfig::fast(BENCH_SEED))
    } else {
        (
            ScenarioScale::Standard,
            4,
            FleetRunConfig::standard(BENCH_SEED),
        )
    };

    let (engine_events, engine_secs) = bench_engine(scale, sim_secs);
    let (fleet_records, fleet_generate_secs, analysis_secs) = bench_fleet(&fleet_cfg, threads);
    let m = Measurement {
        engine_events,
        engine_secs,
        fleet_records,
        fleet_generate_secs,
        analysis_secs,
    };

    println!(
        "threads {}: engine {:.0} events/s ({} events / {:.2}s), fleet {:.0} records/s \
         ({} records / {:.2}s), analysis {:.2}s, scenario wall {:.2}s",
        resolved,
        m.events_per_sec(),
        m.engine_events,
        m.engine_secs,
        m.records_per_sec(),
        m.fleet_records,
        m.fleet_generate_secs,
        m.analysis_secs,
        m.scenario_wall_secs(),
    );

    let out = std::env::var("SONET_BENCH_OUT").unwrap_or_else(|_| "BENCH.json".to_string());
    std::fs::write(&out, json(&m, resolved)).expect("write BENCH.json");
    println!("wrote {out}");
}
