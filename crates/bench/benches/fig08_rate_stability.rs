//! Figure 8: per-destination-rack rate distributions and stability (§5.2).
//!
//! Regenerates the stability comparison (Hadoop vs load-balanced cache)
//! and times the rate-series construction.

use criterion::{criterion_group, criterion_main, Criterion};
use sonet_analysis::rates::rack_rate_series;
use sonet_bench::{banner, bench_lab};
use sonet_core::reports;
use sonet_topology::HostRole;

fn bench(c: &mut Criterion) {
    banner("Figure 8: per-destination-rack rate stability (§5.2)");
    let mut lab = bench_lab();
    if let Some(report) = lab.fig8() {
        println!("{}", report.render());
    }
    let cap = lab.capture();
    let seconds = cap.duration.as_secs() as usize;
    let cache = cap
        .trace(HostRole::CacheFollower)
        .expect("cache-f is monitored");
    let mut g = c.benchmark_group("fig08_rate_stability");
    g.sample_size(10);
    g.bench_function("rack_rate_series", |b| {
        b.iter(|| rack_rate_series(cache, &cap.topo, seconds))
    });
    g.bench_function("full_report", |b| b.iter(|| reports::fig8(cap)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
