//! Figure 15: buffer occupancy, utilization, and drops over a compressed
//! day (§6.3).
//!
//! This experiment runs its own simulation (switch-side telemetry at
//! 10-µs sampling); the bench times the report serialization since the
//! simulation itself is the setup.

use criterion::{criterion_group, criterion_main, Criterion};
use sonet_bench::{banner, bench_lab};

fn bench(c: &mut Criterion) {
    banner("Figure 15: buffer occupancy / utilization / drops (§6.3)");
    let mut lab = bench_lab();
    let report = lab.fig15();
    println!("{}", report.render());
    let mut g = c.benchmark_group("fig15_buffers");
    g.sample_size(10);
    g.bench_function("report_serialize", |b| {
        b.iter(|| serde_json::to_string(&report).expect("report serializes"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
