//! Paper-vs-literature contrast (Table 1 of the paper).
//!
//! Runs the literature-baseline workload (Benson/Kandula-style rack-local,
//! on/off, bimodal MapReduce traffic) beside this paper's Hadoop workload
//! on the same cluster shape, and prints the headline contrasts:
//! rack locality, on/off structure, packet bimodality, and concurrent
//! destinations.

use criterion::{criterion_group, criterion_main, Criterion};
use sonet_analysis::concurrency::{concurrency_cdfs, CountEntity};
use sonet_analysis::packets::{binned_counts, onoff_metrics, packet_size_cdf};
use sonet_analysis::HostTrace;
use sonet_bench::{banner, fast_mode, BENCH_SEED};
use sonet_netsim::{SimConfig, Simulator};
use sonet_telemetry::PortMirror;
use sonet_topology::{ClusterId, ClusterSpec, Topology, TopologySpec};
use sonet_util::{SimDuration, SimTime};
use sonet_workload::literature::LiteratureConfig;
use sonet_workload::{LiteratureWorkload, ServiceProfiles, Workload};
use std::sync::Arc;

struct Contrast {
    leaving_rack_pct: f64,
    empty_15ms: f64,
    median_packet: f64,
    concurrent_hosts_p50: f64,
}

fn topo() -> Arc<Topology> {
    let (racks, hosts) = if fast_mode() { (4, 4) } else { (8, 8) };
    Arc::new(
        Topology::build(TopologySpec::single_dc(vec![ClusterSpec::hadoop(
            racks, hosts,
        )]))
        .expect("valid"),
    )
}

fn measure(trace: &HostTrace, topo: &Topology, secs: u64) -> Contrast {
    let out_bytes = trace.outbound_bytes().max(1);
    let leaving: u64 = trace
        .outbound()
        .iter()
        .filter(|o| topo.locality(trace.host(), o.peer) != sonet_topology::Locality::IntraRack)
        .map(|o| o.wire_bytes as u64)
        .sum();
    let bins = (secs * 1000 / 15) as usize;
    let counts = binned_counts(trace, SimDuration::from_millis(15), bins);
    let conc = concurrency_cdfs(trace, topo, SimDuration::from_millis(5), CountEntity::Hosts);
    Contrast {
        leaving_rack_pct: leaving as f64 / out_bytes as f64 * 100.0,
        empty_15ms: onoff_metrics(&counts).empty_fraction,
        median_packet: packet_size_cdf(trace).median().unwrap_or(0.0),
        concurrent_hosts_p50: conc.all.median().unwrap_or(0.0),
    }
}

fn run_literature(topo: &Arc<Topology>, secs: u64) -> Contrast {
    let mut wl = LiteratureWorkload::new(
        Arc::clone(topo),
        LiteratureConfig::default(),
        ClusterId(0),
        BENCH_SEED,
    );
    let mirror = PortMirror::new(2_000_000);
    let mut sim = Simulator::new(Arc::clone(topo), SimConfig::default(), mirror).expect("config");
    let host = topo.racks()[0].hosts[0];
    sim.watch_link(topo.host_uplink(host));
    sim.watch_link(topo.host_downlink(host));
    let mut t = SimTime::ZERO;
    while t < SimTime::from_secs(secs) {
        t += SimDuration::from_millis(250);
        wl.generate(&mut sim, t).expect("generate");
        sim.run_until(t);
    }
    let (_, mirror) = sim.finish();
    let trace = HostTrace::from_mirror(mirror.records(), host);
    measure(&trace, topo, secs)
}

fn run_paper_hadoop(topo: &Arc<Topology>, secs: u64) -> Contrast {
    let mut profiles = ServiceProfiles::default();
    profiles.rate_scale = if fast_mode() { 5.0 } else { 10.0 };
    let mut wl = Workload::new(Arc::clone(topo), profiles, BENCH_SEED).expect("workload");
    let host = wl
        .monitored_host(sonet_topology::HostRole::Hadoop)
        .expect("hadoop host");
    wl.ensure_busy_start(host, secs as f64);
    let mirror = PortMirror::new(4_000_000);
    let mut sim = Simulator::new(Arc::clone(topo), SimConfig::default(), mirror).expect("config");
    sim.watch_link(topo.host_uplink(host));
    sim.watch_link(topo.host_downlink(host));
    let mut t = SimTime::ZERO;
    while t < SimTime::from_secs(secs) {
        t += SimDuration::from_millis(250);
        wl.generate(&mut sim, t).expect("generate");
        sim.run_until(t);
    }
    let (_, mirror) = sim.finish();
    let trace = HostTrace::from_mirror(mirror.records(), host);
    measure(&trace, topo, secs)
}

fn bench(c: &mut Criterion) {
    banner("Baseline contrast: literature MapReduce vs this paper's Hadoop (Table 1)");
    let topo = topo();
    let secs = if fast_mode() { 3 } else { 10 };
    let lit = run_literature(&topo, secs);
    let fb = run_paper_hadoop(&topo, secs);
    println!("metric                      literature   facebook-style   paper expectation");
    println!(
        "bytes leaving rack (%)      {:>10.1}   {:>14.1}   lit ~20-50, fb ~24 (busy)",
        lit.leaving_rack_pct, fb.leaving_rack_pct
    );
    println!(
        "empty 15-ms bins (frac)     {:>10.2}   {:>14.2}   lit on/off >> fb continuous",
        lit.empty_15ms, fb.empty_15ms
    );
    println!(
        "median packet (bytes)       {:>10.0}   {:>14.0}   both bimodal-ish for bulk",
        lit.median_packet, fb.median_packet
    );
    println!(
        "concurrent hosts / 5 ms     {:>10.1}   {:>14.1}   lit <5, fb ~25",
        lit.concurrent_hosts_p50, fb.concurrent_hosts_p50
    );

    let mut g = c.benchmark_group("baseline_literature");
    g.sample_size(10);
    g.bench_function("literature_1s", |b| {
        b.iter(|| run_literature(&topo, 1));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
