//! Table 2: outbound traffic mix per host type (§3.2)
//!
//! Regenerates the result from a standard packet-tier capture (printed as
//! paper-vs-measured) and times the analysis stage over the cached trace.

use criterion::{criterion_group, criterion_main, Criterion};
use sonet_bench::{banner, bench_lab};
use sonet_core::reports;

fn bench(c: &mut Criterion) {
    banner("Table 2: outbound traffic mix per host type (§3.2)");
    let mut lab = bench_lab();
    let report = lab.table2();
    println!("{}", report.render());
    let cap = lab.capture();
    let mut g = c.benchmark_group("table2_service_breakdown");
    g.sample_size(10);
    g.bench_function("analysis", |b| b.iter(|| reports::table2(cap)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
