//! Property-based tests: conservation laws the analyses must obey for
//! arbitrary traces.

use proptest::prelude::*;
use sonet_analysis::concurrency::{concurrency_cdfs, CountEntity};
use sonet_analysis::flows::{flow_stats, FlowAgg};
use sonet_analysis::locality::locality_timeseries;
use sonet_analysis::HostTrace;
use sonet_netsim::{ConnId, Dir, FlowKey, Packet, PacketKind};
use sonet_telemetry::PacketRecord;
use sonet_topology::{ClusterSpec, HostId, LinkId, Topology, TopologySpec};
use sonet_util::{SimDuration, SimTime};

fn plant() -> Topology {
    Topology::build(TopologySpec::single_dc(vec![
        ClusterSpec::frontend(6, 4),
        ClusterSpec::hadoop(3, 4),
    ]))
    .expect("valid")
}

/// Strategy: a random packet stream out of host 0.
fn arb_records(n_hosts: u32) -> impl Strategy<Value = Vec<PacketRecord>> {
    prop::collection::vec(
        (0u64..2_000_000, 1u32..n_hosts, 0u16..200, 66u32..1600),
        1..200,
    )
    .prop_map(move |entries| {
        entries
            .into_iter()
            .map(|(at_us, peer, port, wire)| PacketRecord {
                at: SimTime::from_micros(at_us),
                link: LinkId(0),
                pkt: Packet {
                    conn: ConnId { idx: 0, gen: 0 },
                    key: FlowKey {
                        client: HostId(0),
                        server: HostId(peer),
                        client_port: port,
                        server_port: 80,
                    },
                    dir: Dir::ClientToServer,
                    kind: PacketKind::Data { last_of_msg: false },
                    seq: 0,
                    msg: 0,
                    payload: 0,
                    wire_bytes: wire,
                },
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flow aggregation conserves bytes and packets at every granularity.
    #[test]
    fn flow_stats_conserve(records in arb_records(36)) {
        let topo = plant();
        let trace = HostTrace::from_mirror(&records, HostId(0));
        let total_bytes = trace.outbound_bytes();
        let total_pkts = trace.outbound().len() as u64;
        for agg in [FlowAgg::FiveTuple, FlowAgg::Host, FlowAgg::Rack] {
            let flows = flow_stats(&trace, &topo, agg);
            prop_assert_eq!(flows.iter().map(|f| f.bytes).sum::<u64>(), total_bytes);
            prop_assert_eq!(flows.iter().map(|f| f.packets).sum::<u64>(), total_pkts);
        }
        // Granularities only merge, never split.
        let t = flow_stats(&trace, &topo, FlowAgg::FiveTuple).len();
        let h = flow_stats(&trace, &topo, FlowAgg::Host).len();
        let r = flow_stats(&trace, &topo, FlowAgg::Rack).len();
        prop_assert!(r <= h && h <= t);
    }

    /// The locality time series accounts for every outbound byte that
    /// falls inside the horizon.
    #[test]
    fn timeseries_conserves_bytes(records in arb_records(36)) {
        let topo = plant();
        let trace = HostTrace::from_mirror(&records, HostId(0));
        let horizon = SimTime::from_secs(3);
        let series = locality_timeseries(&trace, &topo, SimDuration::from_secs(1), horizon);
        let series_bytes: f64 = series
            .iter()
            .flat_map(|row| row.iter())
            .map(|mbps| mbps / 8.0 * 1e6) // Mbps over 1 s → bytes
            .sum();
        let expected: u64 = trace
            .outbound()
            .iter()
            .filter(|o| o.at < horizon)
            .map(|o| o.wire_bytes as u64)
            .sum();
        prop_assert!((series_bytes - expected as f64).abs() < 1.0);
    }

    /// Per-window concurrency scopes partition the "All" count.
    #[test]
    fn concurrency_scopes_partition(records in arb_records(36)) {
        let topo = plant();
        let trace = HostTrace::from_mirror(&records, HostId(0));
        for entity in [CountEntity::Flows, CountEntity::Hosts, CountEntity::Racks] {
            let c = concurrency_cdfs(&trace, &topo, SimDuration::from_millis(5), entity);
            let sum_scopes: f64 = c.intra_cluster.sorted().iter().sum::<f64>()
                + c.intra_datacenter.sorted().iter().sum::<f64>()
                + c.inter_datacenter.sorted().iter().sum::<f64>();
            let all: f64 = c.all.sorted().iter().sum();
            prop_assert!((sum_scopes - all).abs() < 1e-9,
                "scope counts {sum_scopes} != all {all}");
        }
    }
}
