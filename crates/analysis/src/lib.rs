//! # sonet-analysis
//!
//! The analysis library behind every table and figure of the paper:
//! flow reconstruction from packet-header traces, locality breakdowns,
//! demand matrices, per-destination rate stability, heavy-hitter dynamics,
//! packet-level statistics, arrival processes, and concurrency counting.
//!
//! Inputs are the telemetry crate's outputs — [`sonet_telemetry::PacketRecord`]
//! captures from port mirrors (sub-second analyses) and
//! [`sonet_telemetry::ScubaTable`] rows from Fbflow (fleet-wide analyses) —
//! plus the engine's own counters for utilization and buffering.
//!
//! Each module names the table/figure it implements; the experiment index
//! in DESIGN.md §4 maps the other direction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concurrency;
pub mod flows;
pub mod heavy_hitters;
pub mod locality;
pub mod packets;
pub mod rates;
pub mod te;
pub mod trace;
pub mod utilization;

pub use flows::{FlowAgg, FlowStat};
pub use heavy_hitters::HeavyHitterAgg;
pub use trace::{HostTrace, PacketObs};
