//! Heavy-hitter identification, persistence, and predictability
//! (§5.3, Table 4, Figs 10–11, 17).
//!
//! "We define a set of flows that we call heavy hitters, representing the
//! minimum set of flows (or hosts, or racks in the aggregated case) that
//! is responsible for 50 % of the observed traffic volume (in bytes) over
//! a fixed time period."

use crate::trace::HostTrace;
use serde::{Deserialize, Serialize};
use sonet_netsim::FlowKey;
use sonet_topology::{HostId, RackId, Topology};
use sonet_util::{SimDuration, Summary};
use std::collections::{HashMap, HashSet};

/// Aggregation level for heavy-hitter analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeavyHitterAgg {
    /// 5-tuple flows.
    Flow,
    /// Destination hosts.
    Host,
    /// Destination racks.
    Rack,
}

impl HeavyHitterAgg {
    /// Label used in reports (matches Table 4's f/h/r rows).
    pub fn label(self) -> &'static str {
        match self {
            HeavyHitterAgg::Flow => "flow",
            HeavyHitterAgg::Host => "host",
            HeavyHitterAgg::Rack => "rack",
        }
    }
}

/// Entity identifier at any aggregation level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Entity {
    /// A 5-tuple.
    Flow(FlowKey),
    /// A destination host.
    Host(HostId),
    /// A destination rack.
    Rack(RackId),
}

/// Heavy hitters of one observation interval.
#[derive(Debug, Clone, Default)]
pub struct IntervalHitters {
    /// The heavy-hitter set.
    pub hitters: HashSet<Entity>,
    /// Bytes sent by each heavy hitter in the interval.
    pub hitter_bytes: Vec<u64>,
    /// Total bytes in the interval.
    pub total_bytes: u64,
}

/// Computes per-interval entity byte counts over the trace's outbound
/// packets.
fn per_interval_bytes(
    trace: &HostTrace,
    topo: &Topology,
    bin: SimDuration,
    agg: HeavyHitterAgg,
) -> Vec<(u64, HashMap<Entity, u64>)> {
    let mut intervals: HashMap<u64, HashMap<Entity, u64>> = HashMap::new();
    for obs in trace.outbound() {
        let entity = match agg {
            HeavyHitterAgg::Flow => Entity::Flow(obs.key),
            HeavyHitterAgg::Host => Entity::Host(obs.peer),
            HeavyHitterAgg::Rack => Entity::Rack(topo.host(obs.peer).rack),
        };
        *intervals
            .entry(obs.at.bin_index(bin))
            .or_default()
            .entry(entity)
            .or_insert(0) += obs.wire_bytes as u64;
    }
    let mut v: Vec<(u64, HashMap<Entity, u64>)> = intervals.into_iter().collect();
    v.sort_by_key(|(i, _)| *i);
    v
}

/// The minimum set of entities covering `fraction` of `bytes`.
fn heavy_set(bytes: &HashMap<Entity, u64>, fraction: f64) -> IntervalHitters {
    let total: u64 = bytes.values().sum();
    let mut entries: Vec<(Entity, u64)> = bytes.iter().map(|(k, v)| (*k, *v)).collect();
    // Sort by descending bytes with a deterministic tiebreak.
    entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let target = (total as f64 * fraction).ceil() as u64;
    let mut acc = 0u64;
    let mut hitters = HashSet::new();
    let mut hitter_bytes = Vec::new();
    for (e, b) in entries {
        if acc >= target {
            break;
        }
        acc += b;
        hitters.insert(e);
        hitter_bytes.push(b);
    }
    IntervalHitters {
        hitters,
        hitter_bytes,
        total_bytes: total,
    }
}

/// Heavy hitters for every `bin`-sized interval of the trace (intervals
/// with no traffic are skipped, like empty capture periods in the paper).
///
/// The per-interval covers are independent sort-and-scan problems, so
/// they fan out across the process-default worker pool; the result stays
/// in time order for any thread count.
pub fn hitters_per_interval(
    trace: &HostTrace,
    topo: &Topology,
    bin: SimDuration,
    agg: HeavyHitterAgg,
) -> Vec<IntervalHitters> {
    let per = per_interval_bytes(trace, topo, bin, agg);
    let threads = sonet_util::par::resolve_threads(None);
    sonet_util::par::map_indexed(threads, per.len(), |i| heavy_set(&per[i].1, 0.5))
}

/// One interval's heavy hitters together with the full per-entity byte
/// map, for analyses that need to re-score a previous interval's hitters
/// against this interval's traffic (the §5.4 TE thought experiment).
#[derive(Debug, Clone, Default)]
pub struct KeyedInterval {
    /// The heavy-hitter set.
    pub hitters: HashSet<Entity>,
    /// Every entity's bytes in this interval.
    pub entity_bytes: Vec<(Entity, u64)>,
    /// Total bytes.
    pub total_bytes: u64,
}

/// Per-interval heavy hitters plus full entity byte maps, keyed by
/// interval index (non-empty intervals only, in time order).
pub fn hitters_per_interval_keyed(
    trace: &HostTrace,
    topo: &Topology,
    bin: SimDuration,
    agg: HeavyHitterAgg,
) -> Vec<(u64, KeyedInterval)> {
    let per = per_interval_bytes(trace, topo, bin, agg);
    let threads = sonet_util::par::resolve_threads(None);
    sonet_util::par::map_indexed(threads, per.len(), |i| {
        let (idx, bytes) = &per[i];
        let hh = heavy_set(bytes, 0.5);
        let mut entity_bytes: Vec<(Entity, u64)> = bytes.iter().map(|(&e, &b)| (e, b)).collect();
        entity_bytes.sort_by_key(|a| a.0);
        (
            *idx,
            KeyedInterval {
                hitters: hh.hitters,
                total_bytes: hh.total_bytes,
                entity_bytes,
            },
        )
    })
}

/// Table 4 row: count and rate statistics of heavy hitters in 1-ms
/// intervals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HitterStats {
    /// Summary of per-interval heavy-hitter counts.
    pub count: Summary,
    /// Summary of per-hitter rates in Mbps ("we measure size in terms of
    /// rate instead of number of bytes", §5.3).
    pub rate_mbps: Summary,
}

/// Computes Table 4 statistics at the given aggregation and interval.
pub fn hitter_stats(
    trace: &HostTrace,
    topo: &Topology,
    bin: SimDuration,
    agg: HeavyHitterAgg,
) -> Option<HitterStats> {
    let per = hitters_per_interval(trace, topo, bin, agg);
    if per.is_empty() {
        return None;
    }
    let counts: Vec<f64> = per.iter().map(|h| h.hitters.len() as f64).collect();
    let secs = bin.as_secs_f64();
    let rates: Vec<f64> = per
        .iter()
        .flat_map(|h| {
            h.hitter_bytes
                .iter()
                .map(move |&b| b as f64 * 8.0 / secs / 1e6)
        })
        .collect();
    Some(HitterStats {
        count: Summary::of(&counts)?,
        rate_mbps: Summary::of(&rates)?,
    })
}

/// Fig 10: for each consecutive interval pair, the fraction of interval
/// `i`'s heavy hitters that remain heavy hitters in interval `i+1`
/// (as percentages, one value per pair).
pub fn persistence_fractions(
    trace: &HostTrace,
    topo: &Topology,
    bin: SimDuration,
    agg: HeavyHitterAgg,
) -> Vec<f64> {
    let per = hitters_per_interval(trace, topo, bin, agg);
    per.windows(2)
        .filter(|w| !w[0].hitters.is_empty())
        .map(|w| {
            let kept = w[0].hitters.intersection(&w[1].hitters).count();
            kept as f64 / w[0].hitters.len() as f64 * 100.0
        })
        .collect()
}

/// Fig 11: fraction of each subinterval's heavy hitters that are also
/// heavy hitters of the *enclosing one-second interval* (percentages, one
/// value per subinterval).
pub fn enclosing_second_intersection(
    trace: &HostTrace,
    topo: &Topology,
    bin: SimDuration,
    agg: HeavyHitterAgg,
) -> Vec<f64> {
    assert!(
        bin.as_nanos() <= 1_000_000_000,
        "subinterval must be at most one second"
    );
    let per_sub = per_interval_bytes(trace, topo, bin, agg);
    let per_sec: HashMap<u64, IntervalHitters> =
        per_interval_bytes(trace, topo, SimDuration::from_secs(1), agg)
            .into_iter()
            .map(|(i, bytes)| (i, heavy_set(&bytes, 0.5)))
            .collect();
    let bins_per_sec = 1_000_000_000 / bin.as_nanos().max(1);
    per_sub
        .into_iter()
        .filter_map(|(i, bytes)| {
            let sub = heavy_set(&bytes, 0.5);
            if sub.hitters.is_empty() {
                return None;
            }
            let sec = per_sec.get(&(i / bins_per_sec))?;
            let kept = sub.hitters.intersection(&sec.hitters).count();
            Some(kept as f64 / sub.hitters.len() as f64 * 100.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::HostTrace;
    use sonet_netsim::{ConnId, Dir, Packet, PacketKind};
    use sonet_telemetry::PacketRecord;
    use sonet_topology::{ClusterSpec, LinkId, TopologySpec};
    use sonet_util::SimTime;

    fn topo() -> Topology {
        Topology::build(TopologySpec::single_dc(vec![ClusterSpec::frontend(8, 4)])).expect("valid")
    }

    fn rec(at_us: u64, src: HostId, dst: HostId, port: u16, wire: u32) -> PacketRecord {
        PacketRecord {
            at: SimTime::from_micros(at_us),
            link: LinkId(0),
            pkt: Packet {
                conn: ConnId { idx: 0, gen: 0 },
                key: FlowKey {
                    client: src,
                    server: dst,
                    client_port: port,
                    server_port: 80,
                },
                dir: Dir::ClientToServer,
                kind: PacketKind::Data { last_of_msg: false },
                seq: 0,
                msg: 0,
                payload: 0,
                wire_bytes: wire,
            },
        }
    }

    #[test]
    fn heavy_set_is_minimal_50_percent_cover() {
        let topo = topo();
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        let c = topo.racks()[2].hosts[0];
        let d = topo.racks()[3].hosts[0];
        // One interval: flows of 600, 250, 100, 50 → heavy set = {600}.
        let records = vec![
            rec(0, a, b, 1, 600),
            rec(1, a, c, 2, 250),
            rec(2, a, d, 3, 100),
            rec(3, a, b, 4, 50),
        ];
        let trace = HostTrace::from_mirror(&records, a);
        let per = hitters_per_interval(
            &trace,
            &topo,
            SimDuration::from_millis(1),
            HeavyHitterAgg::Flow,
        );
        assert_eq!(per.len(), 1);
        assert_eq!(per[0].hitters.len(), 1);
        assert_eq!(per[0].total_bytes, 1000);
        assert_eq!(per[0].hitter_bytes, vec![600]);
        // Host aggregation merges the two b-bound flows: 650 vs 250 vs 100.
        let per_host = hitters_per_interval(
            &trace,
            &topo,
            SimDuration::from_millis(1),
            HeavyHitterAgg::Host,
        );
        assert_eq!(per_host[0].hitters.len(), 1);
        assert!(per_host[0].hitters.contains(&Entity::Host(b)));
    }

    #[test]
    fn persistence_measures_set_overlap() {
        let topo = topo();
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        let c = topo.racks()[2].hosts[0];
        // Interval 0: b dominates. Interval 1: b dominates again.
        // Interval 2: c dominates.
        let records = vec![
            rec(0, a, b, 1, 900),
            rec(10, a, c, 2, 100),
            rec(1_000, a, b, 1, 900),
            rec(1_010, a, c, 2, 100),
            rec(2_000, a, c, 2, 900),
            rec(2_010, a, b, 1, 100),
        ];
        let trace = HostTrace::from_mirror(&records, a);
        let p = persistence_fractions(
            &trace,
            &topo,
            SimDuration::from_millis(1),
            HeavyHitterAgg::Flow,
        );
        assert_eq!(p, vec![100.0, 0.0]);
    }

    #[test]
    fn enclosing_second_intersection_bounds() {
        let topo = topo();
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        let c = topo.racks()[2].hosts[0];
        // Over the second, b dominates; in ms-interval 1, c is the
        // instantaneous hitter → 0 % intersection for that subinterval.
        let records = vec![
            rec(0, a, b, 1, 5_000),
            rec(1_000, a, c, 2, 400),
            rec(1_001, a, b, 1, 100),
        ];
        let trace = HostTrace::from_mirror(&records, a);
        let v = enclosing_second_intersection(
            &trace,
            &topo,
            SimDuration::from_millis(1),
            HeavyHitterAgg::Flow,
        );
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], 100.0);
        assert_eq!(v[1], 0.0);
    }

    #[test]
    fn stats_summarize_counts_and_rates() {
        let topo = topo();
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        let records: Vec<PacketRecord> = (0..10).map(|i| rec(i * 1_000, a, b, 1, 1250)).collect();
        let trace = HostTrace::from_mirror(&records, a);
        let stats = hitter_stats(
            &trace,
            &topo,
            SimDuration::from_millis(1),
            HeavyHitterAgg::Flow,
        )
        .expect("non-empty");
        assert_eq!(stats.count.p50, 1.0);
        // 1250 bytes / 1 ms = 10 Mbps.
        assert!((stats.rate_mbps.p50 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_yields_none() {
        let topo = topo();
        let trace = HostTrace::from_mirror(&[], topo.racks()[0].hosts[0]);
        assert!(hitter_stats(
            &trace,
            &topo,
            SimDuration::from_millis(1),
            HeavyHitterAgg::Flow
        )
        .is_none());
        assert!(persistence_fractions(
            &trace,
            &topo,
            SimDuration::from_millis(1),
            HeavyHitterAgg::Flow
        )
        .is_empty());
    }
}
