//! Packet-level statistics: sizes, arrival processes, on/off structure
//! (§6.1–6.2, Figs 12–14).

use crate::trace::HostTrace;
use serde::{Deserialize, Serialize};
use sonet_netsim::PacketKind;
use sonet_util::{EmpiricalCdf, SimDuration};
use std::collections::HashMap;

/// Packet size CDF over the host's outbound packets (Fig 12).
pub fn packet_size_cdf(trace: &HostTrace) -> EmpiricalCdf {
    EmpiricalCdf::new(
        trace
            .outbound()
            .iter()
            .map(|o| o.wire_bytes as f64)
            .collect(),
    )
}

/// Fraction of outbound packets at or above `mtu_bytes` (paper: 5–10 %
/// full-MTU for non-Hadoop services).
pub fn full_mtu_fraction(trace: &HostTrace, mtu_bytes: u32) -> f64 {
    let total = trace.outbound().len();
    if total == 0 {
        return 0.0;
    }
    let full = trace
        .outbound()
        .iter()
        .filter(|o| o.wire_bytes >= mtu_bytes)
        .count();
    full as f64 / total as f64
}

/// Bimodality check for Hadoop (§6.1: "almost all packets are either MTU
/// length or TCP ACKs"): fraction of packets within `slack` bytes
/// of either mode.
pub fn bimodal_fraction(trace: &HostTrace, ack_bytes: u32, mtu_bytes: u32, slack: u32) -> f64 {
    let total = trace.outbound().len();
    if total == 0 {
        return 0.0;
    }
    let near = trace
        .outbound()
        .iter()
        .filter(|o| o.wire_bytes <= ack_bytes + slack || o.wire_bytes + slack >= mtu_bytes)
        .count();
    near as f64 / total as f64
}

/// Outbound packet counts per `bin` over `[0, horizon_bins × bin)`
/// (Fig 13's time series).
pub fn binned_counts(trace: &HostTrace, bin: SimDuration, horizon_bins: usize) -> Vec<u32> {
    let mut counts = vec![0u32; horizon_bins];
    for obs in trace.outbound() {
        let b = obs.at.bin_index(bin) as usize;
        if b < horizon_bins {
            counts[b] += 1;
        }
    }
    counts
}

/// On/off structure metrics of a binned series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnOffMetrics {
    /// Fraction of bins with zero packets (≈0 for continuous arrivals;
    /// large for on/off traffic).
    pub empty_fraction: f64,
    /// Coefficient of variation of per-bin counts (bursty ≫ 1).
    pub cov: f64,
}

/// Computes on/off metrics for a binned count series.
pub fn onoff_metrics(counts: &[u32]) -> OnOffMetrics {
    if counts.is_empty() {
        return OnOffMetrics {
            empty_fraction: 0.0,
            cov: 0.0,
        };
    }
    let n = counts.len() as f64;
    let empty = counts.iter().filter(|&&c| c == 0).count() as f64 / n;
    let mean = counts.iter().map(|&c| c as f64).sum::<f64>() / n;
    let var = counts
        .iter()
        .map(|&c| (c as f64 - mean) * (c as f64 - mean))
        .sum::<f64>()
        / n;
    OnOffMetrics {
        empty_fraction: empty,
        cov: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
    }
}

/// Per-destination-host binned counts, for checking that on/off behaviour
/// "remerges" per destination (§6.2).
pub fn per_destination_onoff(
    trace: &HostTrace,
    bin: SimDuration,
    horizon_bins: usize,
) -> Vec<OnOffMetrics> {
    let mut per_dest: HashMap<sonet_topology::HostId, Vec<u32>> = HashMap::new();
    for obs in trace.outbound() {
        let b = obs.at.bin_index(bin) as usize;
        if b >= horizon_bins {
            continue;
        }
        per_dest
            .entry(obs.peer)
            .or_insert_with(|| vec![0; horizon_bins])[b] += 1;
    }
    let mut v: Vec<(sonet_topology::HostId, Vec<u32>)> = per_dest.into_iter().collect();
    v.sort_by_key(|(h, _)| *h);
    v.into_iter()
        .map(|(_, counts)| onoff_metrics(&counts))
        .collect()
}

/// Outbound packet inter-arrival CDF in microseconds (§6.2's arrival
/// process, compared against Benson's log-normal on/off claim).
pub fn packet_interarrival_cdf(trace: &HostTrace) -> EmpiricalCdf {
    let gaps: Vec<f64> = trace
        .outbound()
        .windows(2)
        .map(|w| w[1].at.saturating_since(w[0].at).as_nanos() as f64 / 1e3)
        .collect();
    EmpiricalCdf::new(gaps)
}

/// Fraction of outbound packets that ride in a *train*: following a
/// packet to the same destination within `gap`. Kapoor et al. \[27\]
/// "observe that packets to a given destination often arrive in trains";
/// §6.2 notes per-destination on/off structure re-emerges even though the
/// aggregate does not.
pub fn train_fraction(trace: &HostTrace, gap: SimDuration) -> f64 {
    use std::collections::HashMap;
    let out = trace.outbound();
    if out.len() < 2 {
        return 0.0;
    }
    let mut last_to_dest: HashMap<sonet_topology::HostId, sonet_util::SimTime> = HashMap::new();
    let mut in_train = 0usize;
    for obs in out {
        if let Some(&prev) = last_to_dest.get(&obs.peer) {
            if obs.at.saturating_since(prev) <= gap {
                in_train += 1;
            }
        }
        last_to_dest.insert(obs.peer, obs.at);
    }
    in_train as f64 / out.len() as f64
}

/// SYN inter-arrival CDF in microseconds (Fig 14): gaps between
/// consecutive outbound connection attempts.
pub fn syn_interarrival_cdf(trace: &HostTrace) -> EmpiricalCdf {
    let syn_times: Vec<_> = trace
        .outbound()
        .iter()
        .filter(|o| o.kind == PacketKind::Syn)
        .map(|o| o.at)
        .collect();
    let gaps: Vec<f64> = syn_times
        .windows(2)
        .map(|w| w[1].saturating_since(w[0]).as_nanos() as f64 / 1e3)
        .collect();
    EmpiricalCdf::new(gaps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::HostTrace;
    use sonet_netsim::{ConnId, Dir, FlowKey, Packet};
    use sonet_telemetry::PacketRecord;
    use sonet_topology::{HostId, LinkId};
    use sonet_util::SimTime;

    fn rec(at_us: u64, kind: PacketKind, wire: u32, port: u16) -> PacketRecord {
        PacketRecord {
            at: SimTime::from_micros(at_us),
            link: LinkId(0),
            pkt: Packet {
                conn: ConnId { idx: 0, gen: 0 },
                key: FlowKey {
                    client: HostId(0),
                    server: HostId(1),
                    client_port: port,
                    server_port: 80,
                },
                dir: Dir::ClientToServer,
                kind,
                seq: 0,
                msg: 0,
                payload: 0,
                wire_bytes: wire,
            },
        }
    }

    #[test]
    fn size_cdf_and_mtu_fraction() {
        let records = vec![
            rec(0, PacketKind::Ack, 66, 1),
            rec(1, PacketKind::Data { last_of_msg: false }, 1526, 1),
            rec(2, PacketKind::Data { last_of_msg: true }, 200, 1),
            rec(3, PacketKind::Ack, 66, 1),
        ];
        let trace = HostTrace::from_mirror(&records, HostId(0));
        let cdf = packet_size_cdf(&trace);
        assert_eq!(cdf.len(), 4);
        assert!((full_mtu_fraction(&trace, 1500) - 0.25).abs() < 1e-9);
        // 66, 66 near ACK mode; 1526 near MTU; 200 is neither.
        assert!((bimodal_fraction(&trace, 66, 1526, 10) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn binned_counts_and_onoff() {
        // Packets only in bins 0 and 2 of 4.
        let records = vec![
            rec(100, PacketKind::Ack, 66, 1),
            rec(200, PacketKind::Ack, 66, 1),
            rec(30_000, PacketKind::Ack, 66, 1),
        ];
        let trace = HostTrace::from_mirror(&records, HostId(0));
        let counts = binned_counts(&trace, SimDuration::from_millis(15), 4);
        assert_eq!(counts, vec![2, 0, 1, 0]);
        let m = onoff_metrics(&counts);
        assert!((m.empty_fraction - 0.5).abs() < 1e-9);
        assert!(m.cov > 0.5);
        let per_dest = per_destination_onoff(&trace, SimDuration::from_millis(15), 4);
        assert_eq!(per_dest.len(), 1);
    }

    #[test]
    fn packet_interarrival_and_trains() {
        // Two packets to host 1 back to back (a train), then one to host 2
        // after a long gap.
        let mut records = vec![
            rec(0, PacketKind::Data { last_of_msg: false }, 100, 1),
            rec(50, PacketKind::Data { last_of_msg: false }, 100, 1),
            rec(100_000, PacketKind::Data { last_of_msg: false }, 100, 1),
        ];
        // Repoint the third packet at a different peer.
        records[2].pkt.key.server = HostId(2);
        let trace = HostTrace::from_mirror(&records, HostId(0));
        let cdf = packet_interarrival_cdf(&trace);
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf.sorted(), &[50.0, 99_950.0]);
        // One of three packets follows a same-destination packet within 1 ms.
        let f = train_fraction(&trace, SimDuration::from_millis(1));
        assert!((f - 1.0 / 3.0).abs() < 1e-9, "train fraction {f}");
        // With a huge gap threshold, the cross-destination packet still
        // breaks the train (different peer).
        let f = train_fraction(&trace, SimDuration::from_secs(10));
        assert!((f - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn syn_gaps() {
        let records = vec![
            rec(0, PacketKind::Syn, 74, 1),
            rec(2_000, PacketKind::Syn, 74, 2),
            rec(5_000, PacketKind::Syn, 74, 3),
            rec(5_500, PacketKind::Ack, 66, 3), // not a SYN
        ];
        let trace = HostTrace::from_mirror(&records, HostId(0));
        let cdf = syn_interarrival_cdf(&trace);
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf.sorted(), &[2_000.0, 3_000.0]);
    }

    #[test]
    fn empty_inputs() {
        let trace = HostTrace::from_mirror(&[], HostId(0));
        assert!(packet_size_cdf(&trace).is_empty());
        assert_eq!(full_mtu_fraction(&trace, 1500), 0.0);
        let m = onoff_metrics(&[]);
        assert_eq!(m.empty_fraction, 0.0);
    }
}
