//! Traffic-engineering predictability (§5.4).
//!
//! "For any such scheme to work, however, it must be possible to first
//! identify the heavy hitters, and then realize some benefit. ...
//! Previous work has suggested traffic engineering schemes can be
//! effective if 35 % of traffic is predictable; only rack-level heavy
//! hitters reach that level of predictability for either Web or cache
//! servers."
//!
//! [`predictability`] quantifies this directly: schedule interval `i`'s
//! heavy hitters based on interval `i-1`'s observation, and measure what
//! fraction of interval `i`'s bytes they actually carry. That fraction is
//! the ceiling on what a reactive TE scheme (circuit provisioning, path
//! pinning, special buffering) could possibly treat.

use crate::heavy_hitters::{hitters_per_interval_keyed, HeavyHitterAgg};
use crate::trace::HostTrace;
use serde::{Deserialize, Serialize};
use sonet_topology::Topology;
use sonet_util::{percentile, SimDuration};

/// Outcome of the reactive-TE thought experiment at one aggregation level
/// and timescale.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TePredictability {
    /// Aggregation level evaluated.
    pub agg: HeavyHitterAgg,
    /// Observation/scheduling interval in milliseconds.
    pub bin_ms: u64,
    /// Median fraction of an interval's bytes carried by the previous
    /// interval's heavy hitters (percent).
    pub median_covered_pct: f64,
    /// 10th percentile of the covered fraction.
    pub p10_covered_pct: f64,
    /// Number of interval transitions evaluated.
    pub intervals: usize,
}

impl TePredictability {
    /// Whether this configuration clears Benson et al.'s 35 %-predictable
    /// effectiveness bar.
    pub fn clears_benson_bar(&self) -> bool {
        self.median_covered_pct >= 35.0
    }
}

/// Evaluates reactive-TE predictability over a trace.
///
/// Returns `None` when the trace has fewer than two non-empty intervals.
pub fn predictability(
    trace: &HostTrace,
    topo: &Topology,
    bin: SimDuration,
    agg: HeavyHitterAgg,
) -> Option<TePredictability> {
    let per = hitters_per_interval_keyed(trace, topo, bin, agg);
    if per.len() < 2 {
        return None;
    }
    let mut covered = Vec::with_capacity(per.len() - 1);
    for w in per.windows(2) {
        let (_, prev) = &w[0];
        let (_, next) = &w[1];
        if next.total_bytes == 0 {
            continue;
        }
        let bytes_by_prev_hitters: u64 = next
            .entity_bytes
            .iter()
            .filter(|(e, _)| prev.hitters.contains(e))
            .map(|(_, b)| *b)
            .sum();
        covered.push(bytes_by_prev_hitters as f64 / next.total_bytes as f64 * 100.0);
    }
    if covered.is_empty() {
        return None;
    }
    Some(TePredictability {
        agg,
        bin_ms: bin.as_millis(),
        median_covered_pct: percentile(&covered, 50.0)?,
        p10_covered_pct: percentile(&covered, 10.0)?,
        intervals: covered.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::HostTrace;
    use sonet_netsim::{ConnId, Dir, FlowKey, Packet, PacketKind};
    use sonet_telemetry::PacketRecord;
    use sonet_topology::{ClusterSpec, HostId, LinkId, TopologySpec};
    use sonet_util::SimTime;

    fn topo() -> Topology {
        Topology::build(TopologySpec::single_dc(vec![ClusterSpec::frontend(8, 4)])).expect("valid")
    }

    fn rec(at_ms: u64, src: HostId, dst: HostId, port: u16, wire: u32) -> PacketRecord {
        PacketRecord {
            at: SimTime::from_millis(at_ms),
            link: LinkId(0),
            pkt: Packet {
                conn: ConnId { idx: 0, gen: 0 },
                key: FlowKey {
                    client: src,
                    server: dst,
                    client_port: port,
                    server_port: 80,
                },
                dir: Dir::ClientToServer,
                kind: PacketKind::Data { last_of_msg: false },
                seq: 0,
                msg: 0,
                payload: 0,
                wire_bytes: wire,
            },
        }
    }

    #[test]
    fn perfectly_stable_hitters_are_fully_predictable() {
        let topo = topo();
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        // Every interval: b carries all bytes.
        let records: Vec<PacketRecord> = (0..10).map(|s| rec(s * 100, a, b, 1, 10_000)).collect();
        let trace = HostTrace::from_mirror(&records, a);
        let p = predictability(
            &trace,
            &topo,
            SimDuration::from_millis(100),
            HeavyHitterAgg::Flow,
        )
        .expect("enough intervals");
        assert_eq!(p.median_covered_pct, 100.0);
        assert!(p.clears_benson_bar());
        assert_eq!(p.intervals, 9);
    }

    #[test]
    fn churning_hitters_are_unpredictable() {
        let topo = topo();
        let a = topo.racks()[0].hosts[0];
        // Each interval a different flow dominates; the old hitter vanishes.
        let records: Vec<PacketRecord> = (0..10)
            .map(|s| {
                let dst = topo.racks()[1 + (s as usize % 5)].hosts[0];
                rec(s * 100, a, dst, s as u16, 10_000)
            })
            .collect();
        let trace = HostTrace::from_mirror(&records, a);
        let p = predictability(
            &trace,
            &topo,
            SimDuration::from_millis(100),
            HeavyHitterAgg::Flow,
        )
        .expect("enough intervals");
        assert_eq!(p.median_covered_pct, 0.0);
        assert!(!p.clears_benson_bar());
    }

    #[test]
    fn rack_aggregation_is_more_predictable_than_flows() {
        let topo = topo();
        let a = topo.racks()[0].hosts[0];
        let rack = &topo.racks()[1];
        // Flows churn (new ports) but always toward the same rack.
        let records: Vec<PacketRecord> = (0..10)
            .map(|s| rec(s * 100, a, rack.hosts[(s % 4) as usize], s as u16, 10_000))
            .collect();
        let trace = HostTrace::from_mirror(&records, a);
        let flow = predictability(
            &trace,
            &topo,
            SimDuration::from_millis(100),
            HeavyHitterAgg::Flow,
        )
        .expect("intervals");
        let rack_p = predictability(
            &trace,
            &topo,
            SimDuration::from_millis(100),
            HeavyHitterAgg::Rack,
        )
        .expect("intervals");
        assert_eq!(flow.median_covered_pct, 0.0);
        assert_eq!(rack_p.median_covered_pct, 100.0);
    }

    #[test]
    fn empty_trace_yields_none() {
        let topo = topo();
        let trace = HostTrace::from_mirror(&[], topo.racks()[0].hosts[0]);
        assert!(predictability(
            &trace,
            &topo,
            SimDuration::from_millis(100),
            HeavyHitterAgg::Flow
        )
        .is_none());
    }
}
