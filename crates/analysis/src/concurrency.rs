//! Concurrency counting in 5-ms windows (§6.4, Figs 16–17).
//!
//! "We consider concurrent to mean existing within the same 5-ms window."
//! Fig 16 counts distinct destination racks a host touches per window,
//! split by locality; Fig 17 restricts to heavy-hitter racks (the racks
//! carrying 50 % of the window's bytes).

use crate::trace::HostTrace;
use sonet_topology::{Locality, RackId, Topology};
use sonet_util::{EmpiricalCdf, SimDuration};
use std::collections::{HashMap, HashSet};

/// Per-window concurrency counts split by destination locality scope.
#[derive(Debug, Clone)]
pub struct ConcurrencyCdfs {
    /// Distinct entities per window, intra-cluster destinations only.
    pub intra_cluster: EmpiricalCdf,
    /// Intra-datacenter (outside cluster) destinations only.
    pub intra_datacenter: EmpiricalCdf,
    /// Inter-datacenter destinations only.
    pub inter_datacenter: EmpiricalCdf,
    /// All destinations.
    pub all: EmpiricalCdf,
}

/// What to count per window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CountEntity {
    /// Distinct 5-tuple connections.
    Flows,
    /// Distinct destination hosts.
    Hosts,
    /// Distinct destination racks.
    Racks,
}

/// Counts concurrent entities per `window` (Fig 16 uses 5 ms and
/// `CountEntity::Racks`).
pub fn concurrency_cdfs(
    trace: &HostTrace,
    topo: &Topology,
    window: SimDuration,
    entity: CountEntity,
) -> ConcurrencyCdfs {
    // Per window: sets per scope.
    #[derive(Default)]
    struct Sets {
        cluster: HashSet<u64>,
        dc: HashSet<u64>,
        inter: HashSet<u64>,
        all: HashSet<u64>,
    }
    let mut windows: HashMap<u64, Sets> = HashMap::new();
    for obs in trace.outbound() {
        let w = obs.at.bin_index(window);
        let id = match entity {
            CountEntity::Flows => {
                // Hash the 5-tuple into a stable 64-bit id.
                obs.key.ecmp_hash()
            }
            CountEntity::Hosts => obs.peer.0 as u64,
            CountEntity::Racks => topo.host(obs.peer).rack.0 as u64,
        };
        let sets = windows.entry(w).or_default();
        sets.all.insert(id);
        match topo.locality(trace.host(), obs.peer) {
            Locality::IntraRack | Locality::IntraCluster => {
                sets.cluster.insert(id);
            }
            Locality::IntraDatacenter => {
                sets.dc.insert(id);
            }
            Locality::InterDatacenter => {
                sets.inter.insert(id);
            }
        }
    }
    let mut cluster = Vec::new();
    let mut dc = Vec::new();
    let mut inter = Vec::new();
    let mut all = Vec::new();
    for sets in windows.values() {
        cluster.push(sets.cluster.len() as f64);
        dc.push(sets.dc.len() as f64);
        inter.push(sets.inter.len() as f64);
        all.push(sets.all.len() as f64);
    }
    ConcurrencyCdfs {
        intra_cluster: EmpiricalCdf::new(cluster),
        intra_datacenter: EmpiricalCdf::new(dc),
        inter_datacenter: EmpiricalCdf::new(inter),
        all: EmpiricalCdf::new(all),
    }
}

/// Fig 17: per 5-ms window, the number of *heavy-hitter racks* (the
/// minimal rack set carrying ≥50 % of the window's bytes), split by
/// locality scope.
pub fn heavy_hitter_rack_cdfs(
    trace: &HostTrace,
    topo: &Topology,
    window: SimDuration,
) -> ConcurrencyCdfs {
    #[derive(Default)]
    struct Acc {
        bytes: HashMap<RackId, u64>,
    }
    let mut windows: HashMap<u64, Acc> = HashMap::new();
    for obs in trace.outbound() {
        let w = obs.at.bin_index(window);
        let rack = topo.host(obs.peer).rack;
        *windows.entry(w).or_default().bytes.entry(rack).or_insert(0) += obs.wire_bytes as u64;
    }
    let mut cluster = Vec::new();
    let mut dc = Vec::new();
    let mut inter = Vec::new();
    let mut all = Vec::new();
    let src = trace.host();
    for acc in windows.values() {
        let total: u64 = acc.bytes.values().sum();
        let mut entries: Vec<(RackId, u64)> = acc.bytes.iter().map(|(k, v)| (*k, *v)).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let target = (total as f64 * 0.5).ceil() as u64;
        let mut accum = 0u64;
        let (mut c, mut d, mut i, mut a) = (0.0, 0.0, 0.0, 0.0);
        for (rack, b) in entries {
            if accum >= target {
                break;
            }
            accum += b;
            a += 1.0;
            // Classify the rack by a representative host.
            let rep = topo.rack(rack).hosts[0];
            match topo.locality(src, rep) {
                Locality::IntraRack | Locality::IntraCluster => c += 1.0,
                Locality::IntraDatacenter => d += 1.0,
                Locality::InterDatacenter => i += 1.0,
            }
        }
        cluster.push(c);
        dc.push(d);
        inter.push(i);
        all.push(a);
    }
    ConcurrencyCdfs {
        intra_cluster: EmpiricalCdf::new(cluster),
        intra_datacenter: EmpiricalCdf::new(dc),
        inter_datacenter: EmpiricalCdf::new(inter),
        all: EmpiricalCdf::new(all),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::HostTrace;
    use sonet_netsim::{ConnId, Dir, FlowKey, Packet, PacketKind};
    use sonet_telemetry::PacketRecord;
    use sonet_topology::{ClusterSpec, HostId, LinkId, TopologySpec};
    use sonet_util::SimTime;

    fn topo() -> Topology {
        Topology::build(TopologySpec::single_dc(vec![
            ClusterSpec::frontend(8, 4),
            ClusterSpec::hadoop(4, 4),
        ]))
        .expect("valid")
    }

    fn rec(at_us: u64, src: HostId, dst: HostId, port: u16, wire: u32) -> PacketRecord {
        PacketRecord {
            at: SimTime::from_micros(at_us),
            link: LinkId(0),
            pkt: Packet {
                conn: ConnId { idx: 0, gen: 0 },
                key: FlowKey {
                    client: src,
                    server: dst,
                    client_port: port,
                    server_port: 80,
                },
                dir: Dir::ClientToServer,
                kind: PacketKind::Data { last_of_msg: false },
                seq: 0,
                msg: 0,
                payload: 0,
                wire_bytes: wire,
            },
        }
    }

    #[test]
    fn counts_distinct_racks_per_window() {
        let topo = topo();
        let a = topo.racks()[0].hosts[0];
        // Window 0: two distinct frontend racks + one hadoop host (other
        // cluster, same DC). Window 1: one rack.
        let b = topo.racks()[1].hosts[0];
        let b2 = topo.racks()[1].hosts[1]; // same rack as b
        let c = topo.racks()[2].hosts[0];
        let h = topo.racks()[8].hosts[0]; // hadoop cluster
        let records = vec![
            rec(0, a, b, 1, 100),
            rec(10, a, b2, 2, 100),
            rec(20, a, c, 3, 100),
            rec(30, a, h, 4, 100),
            rec(5_000, a, b, 1, 100),
        ];
        let trace = HostTrace::from_mirror(&records, a);
        let cdfs = concurrency_cdfs(
            &trace,
            &topo,
            SimDuration::from_millis(5),
            CountEntity::Racks,
        );
        // Window 0 has 2 intra-cluster racks + 1 intra-DC rack = 3 all;
        // window 1 has 1.
        assert_eq!(cdfs.all.sorted(), &[1.0, 3.0]);
        assert_eq!(cdfs.intra_cluster.sorted(), &[1.0, 2.0]);
        assert_eq!(cdfs.intra_datacenter.sorted(), &[0.0, 1.0]);
        // Host-level: window 0 has 4 distinct hosts.
        let hosts = concurrency_cdfs(
            &trace,
            &topo,
            SimDuration::from_millis(5),
            CountEntity::Hosts,
        );
        assert_eq!(hosts.all.sorted(), &[1.0, 4.0]);
        // Flow-level: 4 distinct 5-tuples in window 0.
        let flows = concurrency_cdfs(
            &trace,
            &topo,
            SimDuration::from_millis(5),
            CountEntity::Flows,
        );
        assert_eq!(flows.all.sorted(), &[1.0, 4.0]);
    }

    #[test]
    fn heavy_hitter_racks_cover_half_the_bytes() {
        let topo = topo();
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        let c = topo.racks()[2].hosts[0];
        let d = topo.racks()[3].hosts[0];
        // One window: rack1 600 B, rack2 250 B, rack3 150 B → HH = {rack1}.
        let records = vec![
            rec(0, a, b, 1, 600),
            rec(10, a, c, 2, 250),
            rec(20, a, d, 3, 150),
        ];
        let trace = HostTrace::from_mirror(&records, a);
        let cdfs = heavy_hitter_rack_cdfs(&trace, &topo, SimDuration::from_millis(5));
        assert_eq!(cdfs.all.sorted(), &[1.0]);
        assert_eq!(cdfs.intra_cluster.sorted(), &[1.0]);
    }
}
