//! Per-host views over port-mirror captures.
//!
//! A mirror capture interleaves both directions of every mirrored host's
//! access links. [`HostTrace`] splits one host's packets into outbound and
//! inbound streams, each time-sorted — the starting point of all
//! sub-second analyses. The paper's per-server figures are framed around
//! *outbound* traffic ("traffic sent by the server", §4.2), so most
//! analyses consume [`HostTrace::outbound`].

use serde::{Deserialize, Serialize};
use sonet_netsim::{FlowKey, PacketKind};
use sonet_telemetry::PacketRecord;
use sonet_topology::HostId;
use sonet_util::SimTime;

/// One packet observation relative to a monitored host.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacketObs {
    /// Capture timestamp.
    pub at: SimTime,
    /// The other endpoint.
    pub peer: HostId,
    /// Connection 5-tuple.
    pub key: FlowKey,
    /// Packet type.
    pub kind: PacketKind,
    /// Wire bytes.
    pub wire_bytes: u32,
    /// Application payload bytes.
    pub payload: u32,
}

/// A monitored host's capture, split by direction.
#[derive(Debug, Clone)]
pub struct HostTrace {
    host: HostId,
    out: Vec<PacketObs>,
    inbound: Vec<PacketObs>,
}

impl HostTrace {
    /// Extracts `host`'s view from a mirror capture. Packets not touching
    /// `host` are ignored, so one rack-wide capture can be split into
    /// per-host traces.
    pub fn from_mirror(records: &[PacketRecord], host: HostId) -> HostTrace {
        let mut out = Vec::new();
        let mut inbound = Vec::new();
        for r in records {
            let p = &r.pkt;
            if p.wire_src() == host {
                out.push(PacketObs {
                    at: r.at,
                    peer: p.wire_dst(),
                    key: p.key,
                    kind: p.kind,
                    wire_bytes: p.wire_bytes,
                    payload: p.payload,
                });
            } else if p.wire_dst() == host {
                inbound.push(PacketObs {
                    at: r.at,
                    peer: p.wire_src(),
                    key: p.key,
                    kind: p.kind,
                    wire_bytes: p.wire_bytes,
                    payload: p.payload,
                });
            }
        }
        out.sort_by_key(|o| o.at);
        inbound.sort_by_key(|o| o.at);
        HostTrace { host, out, inbound }
    }

    /// The monitored host.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Packets sent by the host, time-sorted.
    pub fn outbound(&self) -> &[PacketObs] {
        &self.out
    }

    /// Packets received by the host, time-sorted.
    pub fn inbound(&self) -> &[PacketObs] {
        &self.inbound
    }

    /// All packets touching the host, time-sorted (allocates).
    pub fn all(&self) -> Vec<PacketObs> {
        let mut v: Vec<PacketObs> = self
            .out
            .iter()
            .chain(self.inbound.iter())
            .copied()
            .collect();
        v.sort_by_key(|o| o.at);
        v
    }

    /// Capture span `(first, last)` over both directions, if non-empty.
    pub fn span(&self) -> Option<(SimTime, SimTime)> {
        let first = match (self.out.first(), self.inbound.first()) {
            (Some(a), Some(b)) => a.at.min(b.at),
            (Some(a), None) => a.at,
            (None, Some(b)) => b.at,
            (None, None) => return None,
        };
        let last = match (self.out.last(), self.inbound.last()) {
            (Some(a), Some(b)) => a.at.max(b.at),
            (Some(a), None) => a.at,
            (None, Some(b)) => b.at,
            (None, None) => return None,
        };
        Some((first, last))
    }

    /// Total outbound wire bytes.
    pub fn outbound_bytes(&self) -> u64 {
        self.out.iter().map(|o| o.wire_bytes as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonet_netsim::{ConnId, Dir, Packet};
    use sonet_topology::LinkId;

    fn rec(at_us: u64, client: u32, server: u32, dir: Dir, wire: u32) -> PacketRecord {
        PacketRecord {
            at: SimTime::from_micros(at_us),
            link: LinkId(0),
            pkt: Packet {
                conn: ConnId { idx: 0, gen: 0 },
                key: FlowKey {
                    client: HostId(client),
                    server: HostId(server),
                    client_port: 1000,
                    server_port: 80,
                },
                dir,
                kind: PacketKind::Data { last_of_msg: false },
                seq: 0,
                msg: 0,
                payload: wire - 66,
                wire_bytes: wire,
            },
        }
    }

    #[test]
    fn splits_directions_and_sorts() {
        let records = vec![
            rec(30, 1, 2, Dir::ServerToClient, 100), // inbound to host1
            rec(10, 1, 2, Dir::ClientToServer, 200), // outbound from host1
            rec(20, 1, 2, Dir::ClientToServer, 300),
            rec(5, 3, 4, Dir::ClientToServer, 400), // unrelated
        ];
        let t = HostTrace::from_mirror(&records, HostId(1));
        assert_eq!(t.outbound().len(), 2);
        assert_eq!(t.inbound().len(), 1);
        assert!(t.outbound()[0].at < t.outbound()[1].at);
        assert_eq!(t.outbound()[0].peer, HostId(2));
        assert_eq!(t.inbound()[0].peer, HostId(2));
        assert_eq!(t.outbound_bytes(), 500);
        let (first, last) = t.span().expect("non-empty");
        assert_eq!(first, SimTime::from_micros(10));
        assert_eq!(last, SimTime::from_micros(30));
        assert_eq!(t.all().len(), 3);
    }

    #[test]
    fn empty_trace() {
        let t = HostTrace::from_mirror(&[], HostId(9));
        assert!(t.span().is_none());
        assert_eq!(t.outbound_bytes(), 0);
        assert!(t.all().is_empty());
    }
}
