//! Per-destination-rack rate distributions and stability (§5.2, Fig 8).
//!
//! The paper compares per-second, per-destination-rack outbound rates
//! second over second: for the load-balanced cache tier "the
//! distributions for each of the 120 seconds are similar, and all are
//! relatively tight", and per-rack rates stay "within a factor of two of
//! their median size in approximately 90 % of the 1-second intervals",
//! with "significant change" (Benson et al.'s 20 % deviation cutoff) in
//! only ~45 % of intervals. Hadoop, not load balanced, spans orders of
//! magnitude.

use crate::trace::HostTrace;
use serde::{Deserialize, Serialize};
use sonet_topology::{RackId, Topology};
use sonet_util::{EmpiricalCdf, SimDuration};
use std::collections::HashMap;

/// Per-second, per-destination-rack outbound rates.
#[derive(Debug, Clone, Default)]
pub struct RackRateSeries {
    /// `rates[rack] = ` kilobytes/second sent to that rack in each second
    /// of the observation window (zeros included once the rack has been
    /// seen at all).
    pub per_rack: HashMap<RackId, Vec<f64>>,
    /// Number of seconds covered.
    pub seconds: usize,
}

/// Builds the per-rack per-second rate series over `seconds` whole seconds.
pub fn rack_rate_series(trace: &HostTrace, topo: &Topology, seconds: usize) -> RackRateSeries {
    let bin = SimDuration::from_secs(1);
    let mut per_rack: HashMap<RackId, Vec<f64>> = HashMap::new();
    for obs in trace.outbound() {
        let s = obs.at.bin_index(bin) as usize;
        if s >= seconds {
            continue;
        }
        let rack = topo.host(obs.peer).rack;
        let series = per_rack.entry(rack).or_insert_with(|| vec![0.0; seconds]);
        series[s] += obs.wire_bytes as f64 / 1000.0; // KB/s
    }
    RackRateSeries { per_rack, seconds }
}

impl RackRateSeries {
    /// Fig 8a/8b: one CDF of per-rack rates for each second (only racks
    /// with non-zero traffic that second, in KB/s).
    pub fn per_second_cdfs(&self) -> Vec<EmpiricalCdf> {
        (0..self.seconds)
            .map(|s| {
                let rates: Vec<f64> = self
                    .per_rack
                    .values()
                    .map(|series| series[s])
                    .filter(|&r| r > 0.0)
                    .collect();
                EmpiricalCdf::new(rates)
            })
            .collect()
    }

    /// Fig 8c: for each rack, the per-second rate normalized to that
    /// rack's median rate (only racks active in at least half the
    /// seconds, so medians are meaningful).
    pub fn stability_cdfs(&self) -> Vec<(RackId, EmpiricalCdf)> {
        let mut out = Vec::new();
        for (&rack, series) in &self.per_rack {
            let active = series.iter().filter(|&&r| r > 0.0).count();
            if active * 2 < self.seconds.max(1) {
                continue;
            }
            let cdf = EmpiricalCdf::new(series.clone());
            let median = cdf.median().unwrap_or(0.0);
            if median <= 0.0 {
                continue;
            }
            let normalized: Vec<f64> = series.iter().map(|&r| r / median).collect();
            out.push((rack, EmpiricalCdf::new(normalized)));
        }
        out.sort_by_key(|(r, _)| *r);
        out
    }

    /// Stability metrics across all rack series.
    pub fn stability_metrics(&self) -> StabilityMetrics {
        let mut within_2x = 0u64;
        let mut significant = 0u64;
        let mut total = 0u64;
        let mut spans = Vec::new();
        for series in self.per_rack.values() {
            let mut sorted: Vec<f64> = series.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            let median = sorted[sorted.len() / 2];
            if median <= 0.0 {
                continue;
            }
            for &r in series {
                total += 1;
                if r >= median / 2.0 && r <= median * 2.0 {
                    within_2x += 1;
                }
                // Benson et al.'s cutoff: a >20 % move is "significant".
                if (r - median).abs() / median > 0.2 {
                    significant += 1;
                }
            }
            // Middle-90 % span in orders of magnitude (§5.2's "six orders
            // of magnitude" for Hadoop).
            let p5 = sonet_util::stats::percentile_sorted(&sorted, 5.0).max(1e-6);
            let p95 = sonet_util::stats::percentile_sorted(&sorted, 95.0).max(1e-6);
            spans.push((p95 / p5).log10());
        }
        StabilityMetrics {
            fraction_within_2x_of_median: if total > 0 {
                within_2x as f64 / total as f64
            } else {
                0.0
            },
            fraction_significant_change: if total > 0 {
                significant as f64 / total as f64
            } else {
                0.0
            },
            median_mid90_span_decades: {
                spans.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
                spans.get(spans.len() / 2).copied().unwrap_or(0.0)
            },
        }
    }
}

/// Aggregate stability measurements (§5.2's headline numbers).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StabilityMetrics {
    /// Fraction of (rack, second) samples within 2× of the rack median
    /// (paper: ≈0.9 for the cache).
    pub fraction_within_2x_of_median: f64,
    /// Fraction of samples deviating more than 20 % from the rack median
    /// (paper: ≈0.45 for the cache).
    pub fraction_significant_change: f64,
    /// Median across racks of the middle-90 % span, in decades (paper: ≈6
    /// for Hadoop, ≪1 for cache).
    pub median_mid90_span_decades: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::HostTrace;
    use sonet_netsim::{ConnId, Dir, FlowKey, Packet, PacketKind};
    use sonet_telemetry::PacketRecord;
    use sonet_topology::{ClusterSpec, HostId, LinkId, TopologySpec};
    use sonet_util::SimTime;

    fn topo() -> Topology {
        Topology::build(TopologySpec::single_dc(vec![ClusterSpec::frontend(8, 4)])).expect("valid")
    }

    fn rec(at_ms: u64, src: HostId, dst: HostId, wire: u32) -> PacketRecord {
        PacketRecord {
            at: SimTime::from_millis(at_ms),
            link: LinkId(0),
            pkt: Packet {
                conn: ConnId { idx: 0, gen: 0 },
                key: FlowKey {
                    client: src,
                    server: dst,
                    client_port: 7,
                    server_port: 80,
                },
                dir: Dir::ClientToServer,
                kind: PacketKind::Data { last_of_msg: false },
                seq: 0,
                msg: 0,
                payload: 0,
                wire_bytes: wire,
            },
        }
    }

    #[test]
    fn steady_rates_are_stable() {
        let topo = topo();
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        // 100 KB to rack 1 every second for 10 seconds.
        let records: Vec<PacketRecord> =
            (0..10).map(|s| rec(s * 1000 + 5, a, b, 100_000)).collect();
        let trace = HostTrace::from_mirror(&records, a);
        let series = rack_rate_series(&trace, &topo, 10);
        assert_eq!(series.per_rack.len(), 1);
        let m = series.stability_metrics();
        assert!((m.fraction_within_2x_of_median - 1.0).abs() < 1e-9);
        assert_eq!(m.fraction_significant_change, 0.0);
        assert!(m.median_mid90_span_decades < 0.01);
        let cdfs = series.per_second_cdfs();
        assert_eq!(cdfs.len(), 10);
        assert!((cdfs[0].median().expect("non-empty") - 100.0).abs() < 1e-9);
        let stability = series.stability_cdfs();
        assert_eq!(stability.len(), 1);
    }

    #[test]
    fn bursty_rates_are_unstable() {
        let topo = topo();
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        // Wildly varying per-second volume.
        let sizes = [
            1_000u32, 4_000_000, 2_000, 3_500_000, 1_500, 2_500_000, 900, 100, 50_000, 10,
        ];
        let records: Vec<PacketRecord> = sizes
            .iter()
            .enumerate()
            .map(|(s, &w)| rec(s as u64 * 1000 + 5, a, b, w))
            .collect();
        let trace = HostTrace::from_mirror(&records, a);
        let m = rack_rate_series(&trace, &topo, 10).stability_metrics();
        assert!(m.fraction_within_2x_of_median < 0.6, "{m:?}");
        assert!(m.fraction_significant_change > 0.5, "{m:?}");
        assert!(m.median_mid90_span_decades > 2.0, "{m:?}");
    }

    #[test]
    fn inactive_racks_excluded_from_stability_series() {
        let topo = topo();
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        let c = topo.racks()[2].hosts[0];
        // Rack of c only active 1 of 10 seconds.
        let mut records: Vec<PacketRecord> =
            (0..10).map(|s| rec(s * 1000 + 5, a, b, 100_000)).collect();
        records.push(rec(2_500, a, c, 999));
        let trace = HostTrace::from_mirror(&records, a);
        let series = rack_rate_series(&trace, &topo, 10);
        assert_eq!(series.per_rack.len(), 2);
        let stability = series.stability_cdfs();
        assert_eq!(stability.len(), 1, "sparse rack must be filtered");
    }
}
