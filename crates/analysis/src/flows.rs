//! Flow reconstruction and size/duration distributions (Figs 6, 7, 9).
//!
//! §5.1 analyzes flows "defined by 5-tuple" from 10-minute packet traces,
//! reporting size and duration CDFs broken down by destination locality,
//! and the striking cache-follower result that per-*host* flow sizes
//! collapse to a tight ≈1 MB distribution (Fig 9) while 5-tuple sizes are
//! widely spread (Fig 6b).

use crate::trace::HostTrace;
use serde::{Deserialize, Serialize};
use sonet_netsim::{FlowKey, PacketKind};
use sonet_topology::{HostId, Locality, RackId, Topology};
use sonet_util::{EmpiricalCdf, SimDuration, SimTime};
use std::collections::HashMap;

/// Aggregation granularity for flow statistics (§5.1: "grouping flows by
/// destination host or rack").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowAgg {
    /// 5-tuple flows.
    FiveTuple,
    /// All flows to the same destination host.
    Host,
    /// All flows to the same destination rack.
    Rack,
}

/// Statistics of one (possibly aggregated) outbound flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowStat {
    /// Destination host (representative host for rack aggregation).
    pub peer: HostId,
    /// Locality of the destination.
    pub locality: Locality,
    /// Outbound wire bytes.
    pub bytes: u64,
    /// Outbound packets.
    pub packets: u64,
    /// First outbound packet time.
    pub first: SimTime,
    /// Last outbound packet time.
    pub last: SimTime,
    /// Whether the monitored host sent the SYN (it initiated the flow).
    pub initiated: bool,
}

impl FlowStat {
    /// Flow duration (first to last outbound packet).
    pub fn duration(&self) -> SimDuration {
        self.last.saturating_since(self.first)
    }
}

/// Reconstructs outbound flows from a host trace at the given granularity.
pub fn flow_stats(trace: &HostTrace, topo: &Topology, agg: FlowAgg) -> Vec<FlowStat> {
    enum Key {
        Tuple(FlowKey),
        Host(HostId),
        Rack(RackId),
    }
    let key_of = |peer: HostId, key: FlowKey| match agg {
        FlowAgg::FiveTuple => Key::Tuple(key),
        FlowAgg::Host => Key::Host(peer),
        FlowAgg::Rack => Key::Rack(topo.host(peer).rack),
    };
    // Map keys to dense indices without requiring a single map type.
    let mut tuple_idx: HashMap<FlowKey, usize> = HashMap::new();
    let mut host_idx: HashMap<HostId, usize> = HashMap::new();
    let mut rack_idx: HashMap<RackId, usize> = HashMap::new();
    let mut stats: Vec<FlowStat> = Vec::new();

    for obs in trace.outbound() {
        let idx = match key_of(obs.peer, obs.key) {
            Key::Tuple(k) => *tuple_idx.entry(k).or_insert(usize::MAX),
            Key::Host(h) => *host_idx.entry(h).or_insert(usize::MAX),
            Key::Rack(r) => *rack_idx.entry(r).or_insert(usize::MAX),
        };
        let idx = if idx == usize::MAX {
            let new_idx = stats.len();
            stats.push(FlowStat {
                peer: obs.peer,
                locality: topo.locality(trace.host(), obs.peer),
                bytes: 0,
                packets: 0,
                first: obs.at,
                last: obs.at,
                initiated: false,
            });
            match key_of(obs.peer, obs.key) {
                Key::Tuple(k) => tuple_idx.insert(k, new_idx),
                Key::Host(h) => host_idx.insert(h, new_idx),
                Key::Rack(r) => rack_idx.insert(r, new_idx),
            };
            new_idx
        } else {
            idx
        };
        let s = &mut stats[idx];
        s.bytes += obs.wire_bytes as u64;
        s.packets += 1;
        s.first = s.first.min(obs.at);
        s.last = s.last.max(obs.at);
        if obs.kind == PacketKind::Syn {
            s.initiated = true;
        }
    }
    stats
}

/// Size CDFs (kilobytes) per destination locality plus overall — one call
/// produces the five series of a Fig 6 panel.
pub fn size_cdfs_by_locality(
    flows: &[FlowStat],
) -> (HashMap<Locality, EmpiricalCdf>, EmpiricalCdf) {
    let mut per: HashMap<Locality, Vec<f64>> = HashMap::new();
    let mut all = Vec::with_capacity(flows.len());
    for f in flows {
        let kb = f.bytes as f64 / 1000.0;
        per.entry(f.locality).or_default().push(kb);
        all.push(kb);
    }
    (
        per.into_iter()
            .map(|(l, v)| (l, EmpiricalCdf::new(v)))
            .collect(),
        EmpiricalCdf::new(all),
    )
}

/// Duration CDFs (milliseconds) per destination locality plus overall
/// (Fig 7 panels).
pub fn duration_cdfs_by_locality(
    flows: &[FlowStat],
) -> (HashMap<Locality, EmpiricalCdf>, EmpiricalCdf) {
    let mut per: HashMap<Locality, Vec<f64>> = HashMap::new();
    let mut all = Vec::with_capacity(flows.len());
    for f in flows {
        let ms = f.duration().as_nanos() as f64 / 1e6;
        per.entry(f.locality).or_default().push(ms);
        all.push(ms);
    }
    (
        per.into_iter()
            .map(|(l, v)| (l, EmpiricalCdf::new(v)))
            .collect(),
        EmpiricalCdf::new(all),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonet_netsim::{ConnId, Dir, Packet};
    use sonet_telemetry::PacketRecord;
    use sonet_topology::{ClusterSpec, LinkId, TopologySpec};

    fn topo() -> Topology {
        Topology::build(TopologySpec::single_dc(vec![ClusterSpec::frontend(8, 4)])).expect("valid")
    }

    fn rec(at_us: u64, key: FlowKey, dir: Dir, kind: PacketKind, wire: u32) -> PacketRecord {
        PacketRecord {
            at: SimTime::from_micros(at_us),
            link: LinkId(0),
            pkt: Packet {
                conn: ConnId { idx: 0, gen: 0 },
                key,
                dir,
                kind,
                seq: 0,
                msg: 0,
                payload: 0,
                wire_bytes: wire,
            },
        }
    }

    #[test]
    fn five_tuple_vs_host_aggregation() {
        let topo = topo();
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        let k1 = FlowKey {
            client: a,
            server: b,
            client_port: 1,
            server_port: 80,
        };
        let k2 = FlowKey {
            client: a,
            server: b,
            client_port: 2,
            server_port: 80,
        };
        let records = vec![
            rec(0, k1, Dir::ClientToServer, PacketKind::Syn, 74),
            rec(
                10,
                k1,
                Dir::ClientToServer,
                PacketKind::Data { last_of_msg: true },
                500,
            ),
            rec(20, k2, Dir::ClientToServer, PacketKind::Syn, 74),
            rec(
                30,
                k2,
                Dir::ClientToServer,
                PacketKind::Data { last_of_msg: true },
                700,
            ),
        ];
        let trace = HostTrace::from_mirror(&records, a);
        let tuple = flow_stats(&trace, &topo, FlowAgg::FiveTuple);
        assert_eq!(tuple.len(), 2);
        assert!(tuple.iter().all(|f| f.initiated));
        let host = flow_stats(&trace, &topo, FlowAgg::Host);
        assert_eq!(host.len(), 1);
        assert_eq!(host[0].bytes, 74 + 500 + 74 + 700);
        assert_eq!(host[0].packets, 4);
        assert_eq!(host[0].locality, Locality::IntraCluster);
        assert_eq!(host[0].duration(), SimDuration::from_micros(30));
        let rack = flow_stats(&trace, &topo, FlowAgg::Rack);
        assert_eq!(rack.len(), 1);
    }

    #[test]
    fn cdfs_split_by_locality() {
        let topo = topo();
        let a = topo.racks()[0].hosts[0];
        let same_rack = topo.racks()[0].hosts[1];
        let other_rack = topo.racks()[1].hosts[0];
        let k1 = FlowKey {
            client: a,
            server: same_rack,
            client_port: 1,
            server_port: 80,
        };
        let k2 = FlowKey {
            client: a,
            server: other_rack,
            client_port: 2,
            server_port: 80,
        };
        let records = vec![
            rec(
                0,
                k1,
                Dir::ClientToServer,
                PacketKind::Data { last_of_msg: true },
                1000,
            ),
            rec(
                0,
                k2,
                Dir::ClientToServer,
                PacketKind::Data { last_of_msg: true },
                3000,
            ),
        ];
        let trace = HostTrace::from_mirror(&records, a);
        let flows = flow_stats(&trace, &topo, FlowAgg::FiveTuple);
        let (by_loc, all) = size_cdfs_by_locality(&flows);
        assert_eq!(all.len(), 2);
        assert_eq!(by_loc[&Locality::IntraRack].len(), 1);
        assert_eq!(by_loc[&Locality::IntraCluster].len(), 1);
        let (by_loc_d, all_d) = duration_cdfs_by_locality(&flows);
        assert_eq!(all_d.len(), 2);
        assert!(by_loc_d.contains_key(&Locality::IntraRack));
    }

    #[test]
    fn responses_do_not_mark_initiation() {
        let topo = topo();
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        // `a` is the *server*: it only sends data/ACKs, never a SYN.
        let k = FlowKey {
            client: b,
            server: a,
            client_port: 5,
            server_port: 80,
        };
        let records = vec![rec(
            0,
            k,
            Dir::ServerToClient,
            PacketKind::Data { last_of_msg: true },
            900,
        )];
        let trace = HostTrace::from_mirror(&records, a);
        let flows = flow_stats(&trace, &topo, FlowAgg::FiveTuple);
        assert_eq!(flows.len(), 1);
        assert!(!flows[0].initiated);
        assert_eq!(flows[0].peer, b);
    }
}
