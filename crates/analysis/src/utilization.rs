//! Link utilization rollups (§4.1, Fig 15b).

use serde::{Deserialize, Serialize};
use sonet_netsim::SimOutputs;
use sonet_topology::{Node, SwitchKind, Topology};
use sonet_util::{SimDuration, Summary};

/// The layer a link belongs to, for §4.1's per-layer utilization story.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkLayer {
    /// Host ↔ RSW access links.
    Edge,
    /// RSW ↔ CSW uplinks.
    RswCsw,
    /// CSW ↔ FC aggregation.
    CswFc,
    /// Everything else (DR, backbone).
    Core,
}

/// Classifies a link into its layer.
pub fn layer_of(topo: &Topology, link_idx: usize) -> LinkLayer {
    let link = &topo.links()[link_idx];
    let kind = |n: Node| match n {
        Node::Host(_) => None,
        Node::Switch(s) => Some(topo.switches()[s.index()].kind),
    };
    match (kind(link.from), kind(link.to)) {
        (None, _) | (_, None) => LinkLayer::Edge,
        (Some(SwitchKind::Rsw), Some(SwitchKind::Csw))
        | (Some(SwitchKind::Csw), Some(SwitchKind::Rsw)) => LinkLayer::RswCsw,
        (Some(SwitchKind::Csw), Some(SwitchKind::Fc))
        | (Some(SwitchKind::Fc), Some(SwitchKind::Csw)) => LinkLayer::CswFc,
        _ => LinkLayer::Core,
    }
}

/// Average utilization (fraction of capacity) of every link in a layer
/// over the run, considering only links that carried any traffic when
/// `active_only` is set (idle provisioned links would otherwise dominate).
pub fn layer_utilization(
    topo: &Topology,
    out: &SimOutputs,
    layer: LinkLayer,
    duration: SimDuration,
    active_only: bool,
) -> Option<Summary> {
    let secs = duration.as_secs_f64();
    if secs <= 0.0 {
        return None;
    }
    let mut utils = Vec::new();
    for (i, link) in topo.links().iter().enumerate() {
        if layer_of(topo, i) != layer {
            continue;
        }
        let bytes = out.link_counters[i].tx_bytes;
        if active_only && bytes == 0 {
            continue;
        }
        let bps = bytes as f64 * 8.0 / secs;
        utils.push(bps / (link.gbps * 1e9));
    }
    Summary::of(&utils)
}

/// Per-interval utilization series for one tracked link, as a fraction of
/// capacity (Fig 15b's time series).
pub fn utilization_series(
    topo: &Topology,
    out: &SimOutputs,
    link: sonet_topology::LinkId,
) -> Option<Vec<f64>> {
    let interval = out.util_interval?;
    let series = out.util_series.get(&link)?;
    let secs = interval.as_secs_f64();
    let cap_bps = topo.links()[link.index()].gbps * 1e9;
    Some(
        series
            .iter()
            .map(|&b| b as f64 * 8.0 / secs / cap_bps)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonet_netsim::{NullTap, SimConfig, Simulator};
    use sonet_topology::{ClusterSpec, TopologySpec};
    use sonet_util::{SimDuration, SimTime};
    use std::sync::Arc;

    #[test]
    fn layers_classified_and_utilization_positive() {
        let topo = Arc::new(
            Topology::build(TopologySpec::single_dc(vec![ClusterSpec::frontend(8, 4)]))
                .expect("valid"),
        );
        let mut sim =
            Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("config");
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        let up = topo.host_uplink(a);
        sim.track_utilization(SimDuration::from_millis(10), &[up])
            .expect("valid interval");
        let c = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        sim.send_message(c, SimTime::ZERO, 1_000_000, 0, SimDuration::ZERO)
            .expect("send");
        sim.run_until(SimTime::from_millis(100));
        let (out, _) = sim.finish();

        let edge = layer_utilization(
            &topo,
            &out,
            LinkLayer::Edge,
            SimDuration::from_millis(100),
            true,
        )
        .expect("some active edge links");
        assert!(edge.max > 0.0);
        // The transfer crossed an RSW→CSW link too.
        let agg = layer_utilization(
            &topo,
            &out,
            LinkLayer::RswCsw,
            SimDuration::from_millis(100),
            true,
        )
        .expect("active rsw-csw links");
        assert!(agg.max > 0.0);

        let series = utilization_series(&topo, &out, up).expect("tracked");
        assert!(!series.is_empty());
        assert!(series.iter().copied().fold(0.0, f64::max) > 0.0);
        assert!(series.iter().all(|&u| u <= 1.0 + 1e-9));

        // Classification sanity.
        assert_eq!(layer_of(&topo, up.index()), LinkLayer::Edge);
    }
}
