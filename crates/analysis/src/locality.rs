//! Locality breakdowns and demand matrices (Tables 2–3, Figs 4–5).

use crate::trace::HostTrace;
use serde::{Deserialize, Serialize};
use sonet_telemetry::ScubaTable;
use sonet_topology::{ClusterId, ClusterType, HostRole, Locality, RackId, Topology};
use sonet_util::{SimDuration, SimTime};
use std::collections::HashMap;

/// Outbound bytes of a monitored host grouped by destination role — one
/// row of Table 2, as percentages.
pub fn service_matrix_row(trace: &HostTrace, topo: &Topology) -> HashMap<HostRole, f64> {
    let mut bytes: HashMap<HostRole, u64> = HashMap::new();
    let mut total = 0u64;
    for obs in trace.outbound() {
        let role = topo.host(obs.peer).role;
        *bytes.entry(role).or_insert(0) += obs.wire_bytes as u64;
        total += obs.wire_bytes as u64;
    }
    if total == 0 {
        return HashMap::new();
    }
    bytes
        .into_iter()
        .map(|(r, b)| (r, b as f64 / total as f64 * 100.0))
        .collect()
}

/// Per-bin outbound megabits by locality — the stacked series of Fig 4.
///
/// Returns one `[Mbps; 4]` row per bin (order: rack, cluster, datacenter,
/// inter-datacenter), covering `[0, horizon)`.
pub fn locality_timeseries(
    trace: &HostTrace,
    topo: &Topology,
    bin: SimDuration,
    horizon: SimTime,
) -> Vec<[f64; 4]> {
    let n_bins = horizon.bin_index(bin) as usize;
    let mut bytes = vec![[0u64; 4]; n_bins + 1];
    for obs in trace.outbound() {
        if obs.at >= horizon {
            continue;
        }
        let b = obs.at.bin_index(bin) as usize;
        let l = match topo.locality(trace.host(), obs.peer) {
            Locality::IntraRack => 0,
            Locality::IntraCluster => 1,
            Locality::IntraDatacenter => 2,
            Locality::InterDatacenter => 3,
        };
        bytes[b][l] += obs.wire_bytes as u64;
    }
    bytes.truncate(n_bins);
    let secs = bin.as_secs_f64();
    bytes
        .into_iter()
        .map(|row| {
            [
                row[0] as f64 * 8.0 / secs / 1e6,
                row[1] as f64 * 8.0 / secs / 1e6,
                row[2] as f64 * 8.0 / secs / 1e6,
                row[3] as f64 * 8.0 / secs / 1e6,
            ]
        })
        .collect()
}

/// One column of Table 3: locality percentages for a set of Fbflow rows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalityBreakdown {
    /// % of bytes staying in the source rack.
    pub rack: f64,
    /// % staying in the cluster (excluding rack-local).
    pub cluster: f64,
    /// % staying in the datacenter (excluding cluster-local).
    pub datacenter: f64,
    /// % leaving the datacenter.
    pub inter_dc: f64,
    /// Total bytes represented.
    pub bytes: u64,
}

impl LocalityBreakdown {
    /// Computes the breakdown over a Scuba table.
    pub fn of(table: &ScubaTable) -> LocalityBreakdown {
        let total = table.total_bytes();
        let by = table.bytes_by(|r| r.locality);
        let pct = |l: Locality| {
            if total == 0 {
                0.0
            } else {
                *by.get(&l).unwrap_or(&0) as f64 / total as f64 * 100.0
            }
        };
        LocalityBreakdown {
            rack: pct(Locality::IntraRack),
            cluster: pct(Locality::IntraCluster),
            datacenter: pct(Locality::IntraDatacenter),
            inter_dc: pct(Locality::InterDatacenter),
            bytes: total,
        }
    }
}

/// The full Table 3: overall locality plus one column per cluster type,
/// with each type's share of total traffic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalityTable {
    /// The "All" column.
    pub all: LocalityBreakdown,
    /// Per-cluster-type columns, in [`ClusterType::ALL`] order.
    pub per_type: Vec<(ClusterType, LocalityBreakdown, f64)>,
}

impl LocalityTable {
    /// Builds Table 3 from a Scuba table. Each cluster-type column scans
    /// the full table independently, so the columns fan out across the
    /// process-default worker pool; [`sonet_util::par::map_indexed`]
    /// returns them in [`ClusterType::ALL`] order regardless of thread
    /// count, keeping the table deterministic.
    pub fn of(table: &ScubaTable) -> LocalityTable {
        let all = LocalityBreakdown::of(table);
        let total = all.bytes.max(1);
        let threads = sonet_util::par::resolve_threads(None);
        let per_type = sonet_util::par::map_indexed(threads, ClusterType::ALL.len(), |i| {
            let t = ClusterType::ALL[i];
            let sub = table.filtered(|r| r.src_cluster_type == t);
            let b = LocalityBreakdown::of(&sub);
            let share = b.bytes as f64 / total as f64 * 100.0;
            (t, b, share)
        });
        LocalityTable { all, per_type }
    }
}

/// Rack-to-rack demand within one cluster (Fig 5a/5b): bytes from each
/// source rack position to each destination rack position.
pub fn rack_demand_matrix(
    table: &ScubaTable,
    topo: &Topology,
    cluster: ClusterId,
) -> Vec<Vec<u64>> {
    let racks = &topo.cluster(cluster).racks;
    let pos: HashMap<RackId, usize> = racks.iter().enumerate().map(|(i, &r)| (r, i)).collect();
    let mut m = vec![vec![0u64; racks.len()]; racks.len()];
    for row in table.rows() {
        if row.src_cluster == cluster && row.dst_cluster == cluster {
            if let (Some(&i), Some(&j)) = (pos.get(&row.src_rack), pos.get(&row.dst_rack)) {
                m[i][j] += row.rec.bytes;
            }
        }
    }
    m
}

/// Cluster-to-cluster demand across a datacenter or the fleet (Fig 5c).
pub fn cluster_demand_matrix(table: &ScubaTable, n_clusters: usize) -> Vec<Vec<u64>> {
    let mut m = vec![vec![0u64; n_clusters]; n_clusters];
    for row in table.rows() {
        let (i, j) = (row.src_cluster.index(), row.dst_cluster.index());
        if i < n_clusters && j < n_clusters {
            m[i][j] += row.rec.bytes;
        }
    }
    m
}

/// Summary statistics of a demand matrix: the span of non-zero demands in
/// decades (§4.3: "demand varies over more than seven orders of magnitude
/// between cluster pairs") and the diagonal (locality) share.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatrixStats {
    /// log10(max/min) over non-zero entries.
    pub decades: f64,
    /// Fraction of bytes on the diagonal.
    pub diagonal_fraction: f64,
    /// Fraction of entries that are non-zero.
    pub fill: f64,
}

impl MatrixStats {
    /// Computes matrix statistics.
    pub fn of(m: &[Vec<u64>]) -> MatrixStats {
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut total = 0u64;
        let mut diag = 0u64;
        let mut nonzero = 0usize;
        let mut cells = 0usize;
        for (i, row) in m.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                cells += 1;
                total += v;
                if i == j {
                    diag += v;
                }
                if v > 0 {
                    nonzero += 1;
                    min = min.min(v);
                    max = max.max(v);
                }
            }
        }
        MatrixStats {
            decades: if nonzero > 0 && min > 0 {
                (max as f64 / min as f64).log10()
            } else {
                0.0
            },
            diagonal_fraction: if total > 0 {
                diag as f64 / total as f64
            } else {
                0.0
            },
            fill: if cells > 0 {
                nonzero as f64 / cells as f64
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonet_netsim::{ConnId, Dir, FlowKey, Packet, PacketKind};
    use sonet_telemetry::{FlowRecord, PacketRecord, Tagger};
    use sonet_topology::{ClusterSpec, HostId, LinkId, TopologySpec};

    fn topo() -> Topology {
        Topology::build(TopologySpec::single_dc(vec![
            ClusterSpec::frontend(8, 4),
            ClusterSpec::hadoop(4, 4),
        ]))
        .expect("valid")
    }

    fn obs_record(at_s: u64, src: HostId, dst: HostId, wire: u32) -> PacketRecord {
        PacketRecord {
            at: SimTime::from_secs(at_s),
            link: LinkId(0),
            pkt: Packet {
                conn: ConnId { idx: 0, gen: 0 },
                key: FlowKey {
                    client: src,
                    server: dst,
                    client_port: 9,
                    server_port: 80,
                },
                dir: Dir::ClientToServer,
                kind: PacketKind::Data { last_of_msg: true },
                seq: 0,
                msg: 0,
                payload: 0,
                wire_bytes: wire,
            },
        }
    }

    #[test]
    fn service_matrix_percentages() {
        let topo = topo();
        let web = topo.hosts_with_role(HostRole::Web)[0];
        let cache = topo.hosts_with_role(HostRole::CacheFollower)[0];
        let hadoop = topo.hosts_with_role(HostRole::Hadoop)[0];
        let records = vec![
            obs_record(0, web, cache, 600),
            obs_record(1, web, cache, 200),
            obs_record(2, web, hadoop, 200),
        ];
        let trace = HostTrace::from_mirror(&records, web);
        let row = service_matrix_row(&trace, &topo);
        assert!((row[&HostRole::CacheFollower] - 80.0).abs() < 1e-9);
        assert!((row[&HostRole::Hadoop] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn timeseries_bins_and_converts_to_mbps() {
        let topo = topo();
        let web = topo.hosts_with_role(HostRole::Web)[0];
        let peer_same_rack = topo.rack(topo.host(web).rack).hosts[1];
        let records = vec![
            obs_record(0, web, peer_same_rack, 1_000_000), // 1 MB in second 0
            obs_record(1, web, peer_same_rack, 2_000_000),
        ];
        let trace = HostTrace::from_mirror(&records, web);
        let series = locality_timeseries(
            &trace,
            &topo,
            SimDuration::from_secs(1),
            SimTime::from_secs(3),
        );
        assert_eq!(series.len(), 3);
        assert!(
            (series[0][0] - 8.0).abs() < 1e-9,
            "1 MB/s = 8 Mbps rack-local"
        );
        assert!((series[1][0] - 16.0).abs() < 1e-9);
        assert_eq!(series[2][0], 0.0);
    }

    #[test]
    fn locality_table_from_scuba() {
        let topo = topo();
        let tagger = Tagger::new(&topo);
        let web = topo.hosts_with_role(HostRole::Web)[0];
        let same_rack = topo.rack(topo.host(web).rack).hosts[1];
        let cache = topo.hosts_with_role(HostRole::CacheFollower)[0];
        let hadoop = topo.hosts_with_role(HostRole::Hadoop)[0];
        let mk = |src: HostId, dst: HostId, bytes: u64| FlowRecord {
            at: SimTime::ZERO,
            capture_host: src,
            src,
            dst,
            src_port: 1,
            dst_port: 2,
            bytes,
            packets: 1,
        };
        let table = tagger.ingest(vec![
            mk(web, same_rack, 100),
            mk(web, cache, 500),
            mk(web, hadoop, 400),
        ]);
        let t = LocalityTable::of(&table);
        assert!((t.all.rack - 10.0).abs() < 1e-9);
        assert!((t.all.cluster - 50.0).abs() < 1e-9);
        assert!((t.all.datacenter - 40.0).abs() < 1e-9);
        assert_eq!(t.all.inter_dc, 0.0);
        // Frontend column holds all the traffic (all sources are web).
        let fe = t
            .per_type
            .iter()
            .find(|(ty, _, _)| *ty == ClusterType::Frontend)
            .expect("FE present");
        assert!((fe.2 - 100.0).abs() < 1e-9, "share {}", fe.2);
    }

    #[test]
    fn rack_matrix_diagonal() {
        let topo = topo();
        let tagger = Tagger::new(&topo);
        let r0 = &topo.racks()[0];
        let r1 = &topo.racks()[1];
        let mk = |src: HostId, dst: HostId, bytes: u64| FlowRecord {
            at: SimTime::ZERO,
            capture_host: src,
            src,
            dst,
            src_port: 1,
            dst_port: 2,
            bytes,
            packets: 1,
        };
        let table = tagger.ingest(vec![
            mk(r0.hosts[0], r0.hosts[1], 700), // diagonal
            mk(r0.hosts[0], r1.hosts[0], 300),
        ]);
        let m = rack_demand_matrix(&table, &topo, ClusterId(0));
        assert_eq!(m[0][0], 700);
        assert_eq!(m[0][1], 300);
        let stats = MatrixStats::of(&m);
        assert!((stats.diagonal_fraction - 0.7).abs() < 1e-9);
        assert!(stats.decades > 0.0);
        let c = cluster_demand_matrix(&table, topo.clusters().len());
        assert_eq!(c[0][0], 1000);
    }
}
