//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros the workspace's property
//! tests use, driven by a deterministic splitmix64 generator. Unlike upstream
//! proptest there is no shrinking: a failing case reports its inputs via the
//! `Debug`-free assertion message and the fixed per-case seed makes every
//! failure reproducible by construction.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

/// Deterministic generator handed to strategies; one per test case.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for the `case`-th run of a test (fixed across runs).
    pub fn for_case(case: u64) -> Self {
        TestRng {
            state: case
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(0x1234_5678),
        }
    }

    /// A generator seeded directly with a saved regression state (the
    /// `cc <16-hex>` entries of a `.proptest-regressions` file).
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Modulo bias is irrelevant for test-input generation.
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn pick(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.pick(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        self.0.pick(rng)
    }
}

/// Uniform choice among boxed alternatives (backs `prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union over the given alternatives; must be non-empty.
    pub fn new(alts: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !alts.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union(alts)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].pick(rng)
    }
}

/// Strategy producing clones of a fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn pick(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let x = self.start as f64 + rng.unit_f64() * (self.end as f64 - self.start as f64);
                x as $t
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.pick(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite floats across a wide magnitude range.
        let mag = rng.unit_f64() * 600.0 - 300.0;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * 10f64.powf(mag / 10.0)
    }
}

macro_rules! arb_tuple {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    )*};
}
arb_tuple! { (A) (A, B) (A, B, C) (A, B, C, D) }

/// Strategy over the whole domain of `T`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with element strategy `S` and length in a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.pick(rng)).collect()
        }
    }

    /// Generates vectors whose length falls in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

// ---------------------------------------------------------------------------
// Runner configuration
// ---------------------------------------------------------------------------

/// Number of cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Outcome of one property case; `Err` carries the failure message.
pub type CaseResult = Result<(), String>;

/// The sibling `.proptest-regressions` path of a test source file (the
/// upstream convention: `tests/foo.rs` → `tests/foo.proptest-regressions`).
pub fn regressions_path(source_file: &str) -> String {
    let stem = source_file.strip_suffix(".rs").unwrap_or(source_file);
    format!("{stem}.proptest-regressions")
}

/// Loads the saved regression seeds for a test source file.
///
/// Each non-comment line has the upstream shape `cc <hex> [# note]`; the
/// first 16 hex digits seed [`TestRng::from_seed`] directly. Longer hex
/// blobs (seeds saved by upstream proptest's 32-byte RNG) contribute
/// their leading 16 digits, so a checked-in upstream file still replays
/// a deterministic case rather than being silently skipped. A missing
/// file is an empty seed list, and unparsable lines are ignored.
pub fn load_regression_seeds(source_file: &str) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(regressions_path(source_file)) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("cc ")?;
            let hex: String = rest
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_hexdigit())
                .take(16)
                .collect();
            if hex.is_empty() {
                return None;
            }
            u64::from_str_radix(&hex, 16).ok()
        })
        .collect()
}

#[doc(hidden)]
pub fn run_case_loop(cfg: &ProptestConfig, case: impl FnMut(&mut TestRng) -> CaseResult) {
    run_case_loop_for(cfg, "", case);
}

/// Runs a property: saved regression seeds of `source_file` first (so a
/// once-failing case is retried before anything else), then the fresh
/// per-case loop.
#[doc(hidden)]
pub fn run_case_loop_for(
    cfg: &ProptestConfig,
    source_file: &str,
    mut case: impl FnMut(&mut TestRng) -> CaseResult,
) {
    if !source_file.is_empty() {
        for (i, seed) in load_regression_seeds(source_file).into_iter().enumerate() {
            let mut rng = TestRng::from_seed(seed);
            if let Err(msg) = case(&mut rng) {
                panic!("property failed at saved regression seed {i} ({seed:#018x}): {msg}");
            }
        }
    }
    for i in 0..cfg.cases {
        let mut rng = TestRng::for_case(i as u64);
        if let Err(msg) = case(&mut rng) {
            panic!("property failed at case {i}: {msg}");
        }
    }
}

#[doc(hidden)]
pub fn format_failure(expr: &str, detail: fmt::Arguments<'_>) -> String {
    if detail.to_string().is_empty() {
        format!("assertion failed: {expr}")
    } else {
        format!("assertion failed: {expr}: {detail}")
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($items:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($items)* }
    };
    ($($items:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($items)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            $crate::run_case_loop_for(&__cfg, file!(), |__rng| {
                let ($($pat,)+) = ($($crate::Strategy::pick(&($strat), __rng),)+);
                $body
                Ok(())
            });
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
                format!($($fmt)+)
            ));
        }
    }};
}

/// Skips the current case when the assumption fails (counted as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

/// Uniform choice among heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The common imports for property tests.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    /// Namespace mirror so `prop::collection::vec` resolves as upstream.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in -2i32..5, f in 0.5f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..5).contains(&y));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((0u32..4).prop_map(|n| n * 2), 1..6),
            (a, b) in (any::<u64>(), Just(7u8)),
        ) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.iter().all(|x| x % 2 == 0));
            prop_assert_eq!(b, 7u8);
            let _ = a;
        }

        #[test]
        fn oneof_picks_all_arms(sel in prop_oneof![0u32..1, 5u32..6, 9u32..10]) {
            prop_assert!(sel == 0 || sel == 5 || sel == 9);
        }
    }
}
