//! Derive macros for the offline `serde` stand-in.
//!
//! Parses structs and enums with the raw `proc_macro` API (no syn/quote in an
//! offline build) and emits `to_content` / `from_content` implementations
//! following serde_json's conventions:
//!
//! * named struct      -> map of field name to value, in declaration order
//! * newtype struct    -> the inner value
//! * tuple struct      -> sequence
//! * unit struct       -> null
//! * unit variant      -> the variant name as a string
//! * newtype variant   -> `{ "Name": value }`
//! * tuple variant     -> `{ "Name": [ ... ] }`
//! * struct variant    -> `{ "Name": { ... } }`
//!
//! Generics and `#[serde(...)]` attributes are not supported; the workspace
//! uses neither.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Input {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported by the offline stand-in");
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: unexpected struct body: {other:?}"),
            };
            Input::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, got {other:?}"),
            };
            Input::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Advances past outer attributes (`#[...]`) and a visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' then the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Consumes type tokens until a comma at zero angle-bracket depth.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(tt) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut names = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        match &tokens[i] {
            TokenTree::Ident(id) => names.push(id.to_string()),
            other => panic!("serde_derive: expected field name, got {other}"),
        }
        i += 1; // name
        i += 1; // ':'
        skip_type(&tokens, &mut i);
        i += 1; // ','
    }
    names
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut i);
        i += 1; // ','
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let src = match parse_input(input) {
        Input::Struct { name, fields } => {
            let body = match &fields {
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(::serde::Content::Str(\"{f}\".to_string()), \
                                 ::serde::Serialize::to_content(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Content::Map(vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                        .collect();
                    format!("::serde::Content::Seq(vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Content::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => {
                            format!("{name}::{vn} => ::serde::Content::Str(\"{vn}\".to_string()),")
                        }
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Content::Map(vec![\
                             (::serde::Content::Str(\"{vn}\".to_string()), \
                              ::serde::Serialize::to_content(__f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_content(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Content::Map(vec![\
                                 (::serde::Content::Str(\"{vn}\".to_string()), \
                                  ::serde::Content::Seq(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::serde::Content::Str(\"{f}\".to_string()), \
                                         ::serde::Serialize::to_content({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Content::Map(vec![\
                                 (::serde::Content::Str(\"{vn}\".to_string()), \
                                  ::serde::Content::Map(vec![{}]))]),",
                                fields.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    src.parse()
        .expect("serde_derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let src = match parse_input(input) {
        Input::Struct { name, fields } => {
            let body = gen_fields_de(&name, &fields, "__c");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(__c: &::serde::Content) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let ctor = format!("{name}::{}", v.name);
                    let body = gen_fields_de(&ctor, &v.fields, "__v");
                    format!("\"{}\" => return {{ {body} }},", v.name)
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(__c: &::serde::Content) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if let ::serde::Content::Str(__s) = __c {{\n\
                             match __s.as_str() {{ {} _ => {{}} }}\n\
                         }}\n\
                         if let ::serde::Content::Map(__entries) = __c {{\n\
                             if __entries.len() == 1 {{\n\
                                 if let Some(__k) = __entries[0].0.as_str() {{\n\
                                     let __v = &__entries[0].1;\n\
                                     match __k {{ {} _ => {{}} }}\n\
                                 }}\n\
                             }}\n\
                         }}\n\
                         Err(::serde::DeError::msg(format!(\
                             \"no variant of {name} matches {{:?}}\", __c)))\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    src.parse()
        .expect("serde_derive: generated Deserialize impl parses")
}

/// Generates an expression that builds `ctor { ... }` / `ctor(...)` from the
/// content tree bound to `src`, evaluating to `Result<_, DeError>` via
/// `return`-free `Ok(..)` / `Err(..)` tails and `?`.
fn gen_fields_de(ctor: &str, fields: &Fields, src: &str) -> String {
    match fields {
        Fields::Named(names) => {
            let lets: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "let __field_{f} = ::serde::Deserialize::from_content(\n\
                             __m.iter().find(|__kv| __kv.0.as_str() == Some(\"{f}\"))\n\
                                 .map(|__kv| &__kv.1)\n\
                                 .unwrap_or(&::serde::Content::Null))?;"
                    )
                })
                .collect();
            let inits: Vec<String> = names.iter().map(|f| format!("{f}: __field_{f}")).collect();
            format!(
                "match {src} {{\n\
                     ::serde::Content::Map(__m) => {{\n\
                         {}\n\
                         Ok({ctor} {{ {} }})\n\
                     }}\n\
                     __other => Err(::serde::DeError::msg(format!(\
                         \"expected map for {ctor}, got {{:?}}\", __other))),\n\
                 }}",
                lets.join("\n"),
                inits.join(", ")
            )
        }
        Fields::Tuple(1) => {
            format!("Ok({ctor}(::serde::Deserialize::from_content({src})?))")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__s[{i}])?"))
                .collect();
            format!(
                "match {src} {{\n\
                     ::serde::Content::Seq(__s) if __s.len() == {n} => \
                         Ok({ctor}({})),\n\
                     __other => Err(::serde::DeError::msg(format!(\
                         \"expected sequence of {n} for {ctor}, got {{:?}}\", __other))),\n\
                 }}",
                items.join(", ")
            )
        }
        Fields::Unit => format!("{{ let _ = {src}; Ok({ctor}) }}"),
    }
}
