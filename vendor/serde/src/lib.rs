//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the small slice of serde that sonet-dc actually uses: `#[derive(Serialize,
//! Deserialize)]` plus the trait surface needed by the local `serde_json`
//! stand-in. Instead of serde's visitor architecture, values convert to and
//! from a single self-describing [`Content`] tree; the derive macros generate
//! `to_content` / `from_content` implementations with serde_json-compatible
//! conventions (struct -> map of field names, newtype -> inner value, unit
//! enum variant -> string, data-carrying variant -> single-entry map).

use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree: the data model shared by `Serialize`,
/// `Deserialize`, and the `serde_json` stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` (also `None` and unit).
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer (only used for negative values).
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered list of key/value entries.
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Content::Null => 0,
            Content::Bool(_) => 1,
            Content::U64(_) | Content::I64(_) | Content::F64(_) => 2,
            Content::Str(_) => 3,
            Content::Seq(_) => 4,
            Content::Map(_) => 5,
        }
    }

    fn as_f64_lossy(&self) -> f64 {
        match self {
            Content::U64(n) => *n as f64,
            Content::I64(n) => *n as f64,
            Content::F64(x) => *x,
            _ => 0.0,
        }
    }

    /// A total order over content values, used to sort map entries coming
    /// from unordered containers so serialization is deterministic.
    pub fn total_cmp(&self, other: &Content) -> Ordering {
        match (self, other) {
            (Content::Bool(a), Content::Bool(b)) => a.cmp(b),
            (Content::U64(a), Content::U64(b)) => a.cmp(b),
            (Content::I64(a), Content::I64(b)) => a.cmp(b),
            (Content::Str(a), Content::Str(b)) => a.cmp(b),
            (Content::Seq(a), Content::Seq(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.total_cmp(y) {
                        Ordering::Equal => {}
                        ord => return ord,
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) if a.rank() == 2 && b.rank() == 2 => {
                a.as_f64_lossy().total_cmp(&b.as_f64_lossy())
            }
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

/// Error produced when a [`Content`] tree does not match the target type.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Constructs an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Content`] data model.
pub trait Serialize {
    /// Converts `self` to a content tree.
    fn to_content(&self) -> Content;
}

/// Conversion from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a content tree.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let n = match c {
                    Content::U64(n) => *n,
                    Content::I64(n) if *n >= 0 => *n as u64,
                    // Integer map keys round-trip through JSON as strings.
                    Content::Str(s) => s.parse::<u64>().map_err(|e| DeError::msg(e.to_string()))?,
                    other => return Err(DeError::msg(format!("expected unsigned integer, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| DeError::msg("integer out of range"))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let n = match c {
                    Content::I64(n) => *n,
                    Content::U64(n) => i64::try_from(*n).map_err(|_| DeError::msg("integer out of range"))?,
                    Content::Str(s) => s.parse::<i64>().map_err(|e| DeError::msg(e.to_string()))?,
                    other => return Err(DeError::msg(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| DeError::msg("integer out of range"))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::F64(x) => Ok(*x as $t),
                    Content::U64(n) => Ok(*n as $t),
                    Content::I64(n) => Ok(*n as $t),
                    // serde_json emits `null` for non-finite floats.
                    Content::Null => Ok(<$t>::NAN),
                    other => Err(DeError::msg(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}
ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::msg(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}
impl Deserialize for () {
    fn from_content(_: &Content) -> Result<Self, DeError> {
        Ok(())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => Ok(Some(T::from_content(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::msg(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::msg(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let v = Vec::<T>::from_content(c)?;
        let n = v.len();
        <[T; N]>::try_from(v)
            .map_err(|_| DeError::msg(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::Seq(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            $name::from_content(
                                it.next().ok_or_else(|| DeError::msg("tuple too short"))?,
                            )?,
                        )+))
                    }
                    other => Err(DeError::msg(format!("expected tuple sequence, got {other:?}"))),
                }
            }
        }
    )*};
}
ser_de_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(Content, Content)> = self
            .iter()
            .map(|(k, v)| (k.to_content(), v.to_content()))
            .collect();
        // HashMap iteration order is unstable; sort so output is deterministic.
        entries.sort_by(|a, b| a.0.total_cmp(&b.0));
        Content::Map(entries)
    }
}
impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(DeError::msg(format!("expected map, got {other:?}"))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(DeError::msg(format!("expected map, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}
