//! Offline stand-in for `serde_json`.
//!
//! Serializes the local `serde` stand-in's [`Content`] data model to JSON text
//! and parses JSON text back. Conventions match upstream serde_json where the
//! workspace depends on them:
//!
//! * struct fields keep declaration order; `HashMap`s are emitted sorted (the
//!   local serde stand-in sorts them), so output is byte-deterministic;
//! * integer map keys are quoted (`{"3": ...}`) and parse back into integers;
//! * non-finite floats serialize as `null`;
//! * `to_string_pretty` indents with two spaces.

use serde::{Content, Deserialize, Serialize};
use std::fmt;
use std::io::Write;

/// Error for serialization, deserialization, or I/O failures.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub struct Value(pub Content);

impl Value {
    /// True if the value is a JSON object.
    pub fn is_object(&self) -> bool {
        matches!(self.0, Content::Map(_))
    }

    /// True if the value is a JSON array.
    pub fn is_array(&self) -> bool {
        matches!(self.0, Content::Seq(_))
    }

    /// True if the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self.0, Content::Null)
    }

    /// Looks up an object member by key.
    pub fn get(&self, key: &str) -> Option<Value> {
        match &self.0 {
            Content::Map(entries) => entries
                .iter()
                .find(|(k, _)| k.as_str() == Some(key))
                .map(|(_, v)| Value(v.clone())),
            _ => None,
        }
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        self.0.clone()
    }
}

impl Deserialize for Value {
    fn from_content(c: &Content) -> Result<Self, serde::DeError> {
        Ok(Value(c.clone()))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_compact(&self.0, &mut out);
        f.write_str(&out)
    }
}

// ---------------------------------------------------------------------------
// Serialization entry points
// ---------------------------------------------------------------------------

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_content(), &mut out);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_content(), &mut out, 0);
    Ok(out)
}

/// Serializes a value as compact JSON into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::msg(e.to_string()))
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(Value(value.to_content()))
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let content = Parser::new(s).parse_document()?;
    Ok(T::from_content(&content)?)
}

/// Reconstructs a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_content(&value.0)?)
}

/// Builds a [`Value`] literal. Object values and array elements may be any
/// serializable expression (including another `json!` invocation, since
/// [`Value`] is itself serializable).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value($crate::__private::Content::Null) };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value($crate::__private::Content::Map(vec![
            $( ($crate::__private::Content::Str($key.to_string()),
                $crate::__private::Serialize::to_content(&$val)) ),*
        ]))
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value($crate::__private::Content::Seq(vec![
            $( $crate::__private::Serialize::to_content(&$elem) ),*
        ]))
    };
    ($other:expr) => {
        $crate::Value($crate::__private::Serialize::to_content(&$other))
    };
}

/// Implementation detail of the `json!` macro.
#[doc(hidden)]
pub mod __private {
    pub use serde::{Content, Serialize};
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_compact(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::F64(x) => write_f64(*x, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_key(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(c: &Content, out: &mut String, indent: usize) {
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_key(k, out);
                out.push_str(": ");
                write_pretty(v, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// JSON object keys must be strings; integers and booleans are quoted the way
/// serde_json quotes integer map keys.
fn write_key(k: &Content, out: &mut String) {
    match k {
        Content::Str(s) => write_escaped(s, out),
        Content::U64(n) => write_escaped(&n.to_string(), out),
        Content::I64(n) => write_escaped(&n.to_string(), out),
        Content::Bool(b) => write_escaped(if *b { "true" } else { "false" }, out),
        other => {
            let mut inner = String::new();
            write_compact(other, &mut inner);
            write_escaped(&inner, out);
        }
    }
}

fn write_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e16 {
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(&mut self) -> Result<Content, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::msg(format!(
                "trailing characters at byte {}",
                self.pos
            )));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::msg("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != b {
            return Err(Error::msg(format!(
                "expected '{}' at byte {}, got '{}'",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek()? {
            b'n' => self.parse_keyword("null", Content::Null),
            b't' => self.parse_keyword("true", Content::Bool(true)),
            b'f' => self.parse_keyword("false", Content::Bool(false)),
            b'"' => Ok(Content::Str(self.parse_string()?)),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected character '{}' at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected ',' or ']' at byte {}, got '{}'",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((Content::Str(key), value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected ',' or '}}' at byte {}, got '{}'",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::msg("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs: combine a high surrogate with
                            // the following \uXXXX low surrogate.
                            let ch = if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xd800) << 10)
                                        + (lo.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| Error::msg("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume the whole run of plain characters at once. The
                    // run ends at an ASCII quote, backslash, or control byte —
                    // none of which can occur inside a multi-byte UTF-8
                    // sequence — so the span boundaries are char boundaries
                    // and the slice is valid UTF-8 (input came from &str).
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        if b < 0x20 {
                            return Err(Error::msg("unescaped control character in string"));
                        }
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| Error::msg("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::msg(format!("invalid number '{text}'")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|n| Content::I64(-(n as i64)))
                .map_err(|_| Error::msg(format!("invalid number '{text}'")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| Error::msg(format!("invalid number '{text}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&5u64).unwrap(), "5");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<u64>("5").unwrap(), 5);
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
        assert_eq!(from_str::<String>("\"a\\u0041b\"").unwrap(), "aAb");
    }

    #[test]
    fn nested_values_parse() {
        let v: Value = from_str("{\"a\": [1, 2, {\"b\": null}], \"c\": -7 }").unwrap();
        assert!(v.is_object());
        assert!(v.get("a").unwrap().is_array());
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
    }

    #[test]
    fn multibyte_strings_round_trip() {
        let v = "héllo \u{1f600} wörld\tend";
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), v);
    }

    #[test]
    fn large_documents_parse_in_linear_time() {
        // Regression: parse_string used to validate the entire remaining
        // input per character, making big documents quadratic. A document
        // this size hangs for minutes under that bug and parses instantly
        // when string spans are consumed in one slice.
        let row = json!({"name": "a-longish-key-name", "payload": "xyzzy", "n": 7u64});
        let doc = Value(Content::Seq(vec![row.0; 20_000]));
        let text = to_string(&doc).unwrap();
        assert!(text.len() > 1_000_000);
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({"x": 1u64, "nested": json!({"y": [1u64, 2u64]}), "z": "s"});
        assert!(v.is_object());
        assert_eq!(
            to_string(&v).unwrap(),
            "{\"x\":1,\"nested\":{\"y\":[1,2]},\"z\":\"s\"}"
        );
    }
}
