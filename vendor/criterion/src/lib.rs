//! Offline stand-in for `criterion`.
//!
//! Provides the API shape the bench harness uses (`benchmark_group`,
//! `bench_function`, `iter`, `iter_batched`, `criterion_group!`,
//! `criterion_main!`) with a simple wall-clock measurement loop: warm up
//! once, then run a fixed number of timed iterations and print min / mean /
//! max. No statistics, plots, or baselines — enough to exercise and time the
//! benched code paths in an offline build.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benched value.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// How `iter_batched` amortizes setup cost (accepted for API compatibility;
/// the stand-in re-runs setup before every timed iteration regardless).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small input: many iterations per batch upstream.
    SmallInput,
    /// Large input: few iterations per batch upstream.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// The measurement context passed to bench closures.
pub struct Bencher {
    iterations: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(iterations: u64) -> Self {
        Bencher {
            iterations,
            samples: Vec::new(),
        }
    }

    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up pass.
        black_box(routine());
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("bench {label:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!(
            "bench {label:<40} mean {mean:>12?}   min {min:>12?}   max {max:>12?}   ({} iters)",
            self.samples.len()
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: u64,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count for subsequent benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group (upstream writes summary output here; a no-op).
    pub fn finish(self) {}
}

/// The top-level harness handle.
pub struct Criterion {
    default_sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.to_string(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs and reports one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.default_sample_size);
        f(&mut b);
        b.report(id);
        self
    }
}

/// Bundles bench functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
