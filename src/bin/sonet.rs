//! `sonet` — command-line front end for the sonet-dc reproduction.
//!
//! ```text
//! sonet list                         list experiment ids
//! sonet run <id> [--seed N] [--fast] regenerate one table/figure
//! sonet all [--seed N] [--fast]      regenerate everything (panic-isolated,
//!                                    experiments fan over the worker pool)
//! sonet capture [opts]               supervised packet-tier capture
//! sonet fleet [opts]                 supervised fleet-tier run
//! sonet chaos [opts]                 deterministic fault-injection campaign:
//!                                    profiles × seeds, recovery SLOs, and
//!                                    automatic fault-plan shrinking; or
//!                                    --replay FILE to re-run a shrunk repro
//! sonet export-fleet <out.jsonl>     dump a fleet-tier Fbflow day
//! sonet export-matrix <out.csv>      dump the Fig 5 frontend rack matrix
//! ```
//!
//! Every command also takes `--obs[=off|summary|deep]` (flight-recorder
//! level; bare `--obs` means `summary`) and `--trace-out FILE` (Chrome
//! `trace_event` JSON for Perfetto). Observability is strictly a side
//! channel: no output byte of any run changes with it off, on, or deep.
//!
//! All run commands take `--threads N` (default: available parallelism).
//! The worker count never changes any output byte — only wall-clock.
//! For `capture` the flag also sets the engine's worker width: each
//! datacenter of the plant runs its own event calendar, synchronized at
//! conservative lookahead barriers (see DESIGN.md §10), so a multi-DC
//! capture uses up to one worker per datacenter.
//!
//! Supervised runs (`capture`, `fleet`) checkpoint to `--checkpoint DIR`
//! at regular intervals, audit engine invariants at every checkpoint
//! boundary (in debug builds or with the `audit` feature), stop cleanly
//! when a `--max-*` budget trips (exit code 2, resumable), and pick up
//! from a prior checkpoint with `--resume FILE` — producing final results
//! byte-identical to an uninterrupted run.

use sonet_dc::core::chaos::{replay_repro, run_campaign, CampaignConfig, ChaosProfile, ReproFile};
use sonet_dc::core::reports::{self, Fig15Config};
use sonet_dc::core::supervised::{
    resume_capture, resume_fleet, run_capture, run_fleet, RunStatus, SuperviseOptions,
};
use sonet_dc::core::supervisor::{isolate, BatchSummary, RunBudget, RunSupervisor};
use sonet_dc::core::{CaptureConfig, FleetData, FleetRunConfig, LabConfig, StandardCapture};
use sonet_dc::netsim::FidelityMode;
use sonet_dc::util::obs::{self, report};
use sonet_dc::util::{par, SimDuration};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const EXPERIMENTS: &[(&str, &str)] = &[
    ("table2", "outbound traffic mix per host type (§3.2)"),
    ("table3", "traffic locality by cluster type (§4.3)"),
    ("table4", "heavy hitters in 1-ms intervals (§5.3)"),
    ("fig4", "per-second traffic locality (§4.2)"),
    ("fig5", "rack/cluster demand matrices (§4.3)"),
    ("fig6", "flow size CDFs by locality (§5.1)"),
    ("fig7", "flow duration CDFs by locality (§5.1)"),
    ("fig8", "per-destination-rack rate stability (§5.2)"),
    ("fig9", "cache-follower per-host flow sizes (§5.1)"),
    ("fig10", "heavy-hitter persistence (§5.3)"),
    ("fig11", "heavy hitters vs enclosing second (§5.3)"),
    ("fig12", "packet size distributions (§6.1)"),
    ("fig13", "Hadoop arrivals are not on/off (§6.2)"),
    ("fig14", "flow (SYN) inter-arrival (§6.2)"),
    ("fig15", "buffer occupancy / utilization / drops (§6.3)"),
    ("fig16", "concurrent racks per 5 ms (§6.4)"),
    ("fig17", "concurrent heavy-hitter racks per 5 ms (§6.4)"),
    ("util", "link utilization by fabric layer (§4.1)"),
    ("te", "traffic-engineering predictability (§5.4)"),
];

/// Exit code for a budget-stopped (resumable) supervised run.
const EXIT_STOPPED: u8 = 2;

struct Options {
    seed: u64,
    fast: bool,
    /// `--threads N`: worker threads for parallel stages. `None` defers
    /// to available parallelism. Never changes any output, only speed.
    threads: Option<usize>,
    /// `--fidelity packet|hybrid`: packet-level DES everywhere (default)
    /// or the flow-level fast path outside fidelity islands.
    fidelity: FidelityMode,
}

/// Supervision flags shared by `capture` and `fleet`.
struct SuperviseFlags {
    checkpoint_dir: PathBuf,
    every_ms: Option<u64>,
    resume: Option<PathBuf>,
    budget: RunBudget,
    audit: Option<bool>,
    chunk_hosts: Option<u32>,
}

fn parse_common(args: &[String]) -> Options {
    let mut opts = Options {
        seed: 42,
        fast: false,
        threads: None,
        fidelity: FidelityMode::Packet,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    opts.seed = v;
                }
            }
            "--fast" => opts.fast = true,
            "--threads" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    opts.threads = Some(v);
                }
            }
            "--fidelity" => match it.next().map(String::as_str).and_then(FidelityMode::parse) {
                Some(m) => opts.fidelity = m,
                None => report::warn("--fidelity takes packet|hybrid; staying on packet"),
            },
            other => {
                if let Some(v) = other.strip_prefix("--fidelity=") {
                    match FidelityMode::parse(v) {
                        Some(m) => opts.fidelity = m,
                        None => report::warn(&format!(
                            "--fidelity takes packet|hybrid, not '{v}'; staying on packet"
                        )),
                    }
                }
            }
        }
    }
    // Make the explicit count the process-wide default so analysis
    // stages that fan out internally see the same setting.
    if let Some(n) = opts.threads {
        par::set_threads(n);
    }
    opts
}

/// Flight-recorder flags, valid on every subcommand.
struct ObsFlags {
    mode: obs::ObsMode,
    trace_out: Option<PathBuf>,
}

/// Parses `--obs[=off|summary|deep]` (bare `--obs` means `summary`) and
/// `--trace-out PATH` from anywhere on the command line, so the flight
/// recorder covers every subcommand uniformly.
fn parse_obs(args: &[String]) -> Result<ObsFlags, String> {
    let mut flags = ObsFlags {
        mode: obs::ObsMode::Off,
        trace_out: None,
    };
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a == "--obs" {
            // The value is optional: consume the next token only when it
            // names a mode, so `--obs --threads 4` still parses.
            match args
                .get(i + 1)
                .map(String::as_str)
                .and_then(obs::ObsMode::parse)
            {
                Some(m) => {
                    flags.mode = m;
                    i += 1;
                }
                None => flags.mode = obs::ObsMode::Summary,
            }
        } else if let Some(v) = a.strip_prefix("--obs=") {
            flags.mode = obs::ObsMode::parse(v)
                .ok_or_else(|| format!("--obs takes off|summary|deep, not '{v}'"))?;
        } else if a == "--trace-out" {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--trace-out needs a path".to_owned())?;
            flags.trace_out = Some(PathBuf::from(v));
            i += 1;
        }
        i += 1;
    }
    Ok(flags)
}

/// Exports the span trace at process exit when `--trace-out` was given.
fn finish_obs(flags: &ObsFlags) {
    let Some(path) = &flags.trace_out else { return };
    if !obs::on() {
        report::warn("--trace-out set but --obs is off; writing an empty trace");
    }
    match obs::trace::export_chrome(path) {
        Ok(n) => report::line(&format!("wrote {n} trace events to {}", path.display())),
        Err(e) => report::warn(&format!("trace export to {} failed: {e}", path.display())),
    }
}

/// Starts a `RUNINFO.json` manifest for the unsupervised commands when
/// observability is on. Supervised runs (`capture`, `fleet`) write theirs
/// next to their checkpoints instead.
fn cli_runinfo(command: &str, opts: &Options) -> Option<obs::runinfo::RunInfo> {
    obs::on().then(|| {
        obs::runinfo::RunInfo::start(
            command,
            opts.seed,
            &format!(
                "{{\"seed\":{},\"fast\":{},\"fidelity\":\"{}\"}}",
                opts.seed,
                opts.fast,
                opts.fidelity.name()
            ),
            par::resolve_threads(opts.threads),
        )
    })
}

/// Finalizes and writes `./RUNINFO.json` (no-op with observability off).
fn finish_cli_runinfo(runinfo: Option<obs::runinfo::RunInfo>, status: String) {
    let Some(mut info) = runinfo else { return };
    info.finish(status);
    let path = PathBuf::from("RUNINFO.json");
    if let Err(e) = info.write_atomic(&path) {
        report::warn(&format!("could not write {}: {e}", path.display()));
    }
}

fn parse_supervise(args: &[String]) -> Result<SuperviseFlags, String> {
    let mut flags = SuperviseFlags {
        checkpoint_dir: PathBuf::from("sonet-checkpoints"),
        every_ms: None,
        resume: None,
        budget: RunBudget::unlimited(),
        audit: None,
        chunk_hosts: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--checkpoint" => flags.checkpoint_dir = PathBuf::from(value("--checkpoint")?),
            "--every-ms" => {
                flags.every_ms = Some(
                    value("--every-ms")?
                        .parse()
                        .map_err(|e| format!("--every-ms: {e}"))?,
                )
            }
            "--resume" => flags.resume = Some(PathBuf::from(value("--resume")?)),
            "--max-wall-secs" => {
                let secs: u64 = value("--max-wall-secs")?
                    .parse()
                    .map_err(|e| format!("--max-wall-secs: {e}"))?;
                flags.budget.wall_clock = Some(Duration::from_secs(secs));
            }
            "--max-events" => {
                flags.budget.max_events = Some(
                    value("--max-events")?
                        .parse()
                        .map_err(|e| format!("--max-events: {e}"))?,
                )
            }
            "--max-rss-mb" => {
                let mb: u64 = value("--max-rss-mb")?
                    .parse()
                    .map_err(|e| format!("--max-rss-mb: {e}"))?;
                flags.budget.max_peak_rss = Some(mb * 1024 * 1024);
            }
            "--audit" => {
                flags.audit = match value("--audit")?.as_str() {
                    "on" => Some(true),
                    "off" => Some(false),
                    other => return Err(format!("--audit takes on|off, not '{other}'")),
                }
            }
            "--chunk-hosts" => {
                flags.chunk_hosts = Some(
                    value("--chunk-hosts")?
                        .parse()
                        .map_err(|e| format!("--chunk-hosts: {e}"))?,
                )
            }
            _ => {}
        }
    }
    Ok(flags)
}

fn supervise_options(flags: &SuperviseFlags, opts: &Options) -> SuperviseOptions {
    let mut sup = SuperviseOptions::new(&flags.checkpoint_dir);
    if let Some(ms) = flags.every_ms {
        sup.every = SimDuration::from_millis(ms);
    }
    if let Some(hosts) = flags.chunk_hosts {
        sup.hosts_per_chunk = hosts;
    }
    sup.budget = flags.budget.clone();
    sup.audit = flags.audit;
    sup.threads = opts.threads;
    sup
}

fn lab_config(opts: &Options) -> LabConfig {
    let mut cfg = if opts.fast {
        LabConfig::fast(opts.seed)
    } else {
        LabConfig::standard(opts.seed)
    };
    cfg.threads = opts.threads;
    cfg.capture.fidelity = opts.fidelity;
    cfg
}

/// Which substrates an experiment consumes ([`reports`] free functions
/// take them explicitly; `fig15` runs its own simulation and needs
/// neither).
struct Needs {
    capture: bool,
    fleet: bool,
}

fn experiment_needs(id: &str) -> Needs {
    match id {
        "table3" | "fig5" => Needs {
            capture: false,
            fleet: true,
        },
        "fig15" => Needs {
            capture: false,
            fleet: false,
        },
        _ => Needs {
            capture: true,
            fleet: false,
        },
    }
}

/// Renders one experiment from pre-built substrates. Shared by `sonet
/// run` (which builds only what the experiment needs) and `sonet all`
/// (which builds both once and fans experiments over a worker pool).
fn render_report(
    id: &str,
    capture: Option<&StandardCapture>,
    fleet: Option<&FleetData>,
    fig15: &Fig15Config,
) -> Result<String, String> {
    // Test hook: lets the integration suite force one experiment to blow
    // up under the batch isolator and assert on the process exit code,
    // without shipping a deliberately broken scenario.
    if std::env::var("SONET_PANIC_EXPERIMENT").as_deref() == Ok(id) {
        panic!("{id}: injected test panic (SONET_PANIC_EXPERIMENT)");
    }
    let cap = || capture.ok_or_else(|| format!("{id}: capture unavailable"));
    let flt = || fleet.ok_or_else(|| format!("{id}: fleet data unavailable"));
    let out = match id {
        "table2" => reports::table2(cap()?).render(),
        "table3" => reports::table3(flt()?).render(),
        "table4" => reports::table4(cap()?).render(),
        "fig4" => reports::fig4(cap()?).render(),
        "fig5" => reports::fig5(flt()?).map_err(|e| e.to_string())?.render(),
        "fig6" => reports::fig6(cap()?).render(),
        "fig7" => reports::fig7(cap()?).render(),
        "fig8" => reports::fig8(cap()?)
            .map(|r| r.render())
            .unwrap_or_else(|| "fig8: traces missing".into()),
        "fig9" => reports::fig9(cap()?)
            .map(|r| r.render())
            .unwrap_or_else(|| "fig9: cache trace missing".into()),
        "fig10" => reports::fig10(cap()?).render(),
        "fig11" => reports::fig11(cap()?).render(),
        "fig12" => reports::fig12(cap()?).render(),
        "fig13" => reports::fig13(cap()?)
            .map(|r| r.render())
            .unwrap_or_else(|| "fig13: hadoop trace missing".into()),
        "fig14" => reports::fig14(cap()?).render(),
        "fig15" => reports::fig15(fig15).map_err(|e| e.to_string())?.render(),
        "fig16" => reports::fig16(cap()?).render(),
        "fig17" => reports::fig17(cap()?).render(),
        "util" => reports::utilization(cap()?).render(),
        "te" => reports::te_predictability(cap()?).render(),
        other => return Err(format!("unknown experiment '{other}' (try `sonet list`)")),
    };
    Ok(out)
}

/// `sonet all`: build both substrates concurrently (each panic-isolated),
/// then fan the experiments over the worker pool. Output order and bytes
/// are identical for any `--threads` value: renders are collected per
/// experiment and printed in `EXPERIMENTS` order.
fn cmd_all(args: &[String]) -> ExitCode {
    let opts = parse_common(args);
    let budget = match parse_supervise(args) {
        Ok(f) => f.budget,
        Err(e) => {
            report::line(&e);
            return ExitCode::FAILURE;
        }
    };
    let mut runinfo = cli_runinfo("all", &opts);
    let cfg = lab_config(&opts);
    let threads = par::resolve_threads(opts.threads);

    // Substrate builds are independent scenarios: run them concurrently,
    // each under `isolate` so one blowing up costs only its dependents.
    let (capture, fleet) = std::thread::scope(|s| {
        let cap_cfg = &cfg.capture;
        let handle = s.spawn(move || isolate(AssertUnwindSafe(|| StandardCapture::run(cap_cfg))));
        let fleet = isolate(AssertUnwindSafe(|| {
            FleetData::run_with(&cfg.fleet, cfg.threads)
        }));
        (handle.join().expect("capture builder thread"), fleet)
    });
    let fleet: Result<FleetData, String> =
        fleet.and_then(|r| r.map_err(|e| format!("fleet run failed: {e}")));

    // The batch budget is checked at every scenario start — a cooperative
    // cancellation point, like checkpoint boundaries in supervised runs.
    let supervisor = RunSupervisor::new(budget);
    let results = par::map_indexed(threads, EXPERIMENTS.len(), |i| {
        let id = EXPERIMENTS[i].0;
        if let Some(reason) = supervisor.check(0) {
            return Err(format!("skipped: {reason}"));
        }
        let needs = experiment_needs(id);
        if needs.capture {
            if let Err(e) = &capture {
                return Err(format!("capture failed: {e}"));
            }
        }
        if needs.fleet {
            if let Err(e) = &fleet {
                return Err(e.clone());
            }
        }
        match isolate(AssertUnwindSafe(|| {
            render_report(id, capture.as_ref().ok(), fleet.as_ref().ok(), &cfg.fig15)
        })) {
            Ok(r) => r,
            Err(panic_msg) => Err(format!("panicked: {panic_msg}")),
        }
    });

    let mut batch = BatchSummary::new();
    for ((id, _), outcome) in EXPERIMENTS.iter().zip(&results) {
        if let Ok(out) = outcome {
            println!("{out}");
        }
        batch.push(*id, outcome.clone().map(|_| "rendered".to_string()));
    }
    report::line(batch.render().trim_end());
    if let Some(info) = runinfo.as_mut() {
        for o in &batch.outcomes {
            if let Err(e) = &o.result {
                info.note(format!("{}: {e}", o.name));
            }
        }
    }
    if batch.all_ok() {
        finish_cli_runinfo(runinfo, "completed".to_owned());
        ExitCode::SUCCESS
    } else {
        let failures = batch.failures();
        finish_cli_runinfo(runinfo, format!("failed: {failures} scenarios"));
        ExitCode::FAILURE
    }
}

/// Flags specific to `sonet chaos`.
struct ChaosFlags {
    profiles: String,
    seeds: u64,
    duration_ms: Option<u64>,
    out_dir: PathBuf,
    resume: bool,
    inject_bad: bool,
    max_shrinks: Option<usize>,
    replay: Option<PathBuf>,
}

fn parse_chaos(args: &[String]) -> Result<ChaosFlags, String> {
    let mut flags = ChaosFlags {
        profiles: "all".to_owned(),
        seeds: 4,
        duration_ms: None,
        out_dir: PathBuf::from("sonet-chaos"),
        resume: false,
        inject_bad: false,
        max_shrinks: None,
        replay: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--profiles" => flags.profiles = value("--profiles")?.clone(),
            "--seeds" => {
                flags.seeds = value("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?
            }
            "--duration-ms" => {
                flags.duration_ms = Some(
                    value("--duration-ms")?
                        .parse()
                        .map_err(|e| format!("--duration-ms: {e}"))?,
                )
            }
            "--out" => flags.out_dir = PathBuf::from(value("--out")?),
            "--resume" => flags.resume = true,
            "--inject-bad" => flags.inject_bad = true,
            "--max-shrinks" => {
                flags.max_shrinks = Some(
                    value("--max-shrinks")?
                        .parse()
                        .map_err(|e| format!("--max-shrinks: {e}"))?,
                )
            }
            "--replay" => flags.replay = Some(PathBuf::from(value("--replay")?)),
            _ => {}
        }
    }
    Ok(flags)
}

/// `sonet chaos --replay FILE`: re-run a shrunk repro file standalone.
/// Exits 0 iff the recorded SLO violation reproduces.
fn cmd_chaos_replay(path: &std::path::Path) -> ExitCode {
    let repro = match ReproFile::read(path) {
        Ok(r) => r,
        Err(e) => {
            report::line(&e);
            return ExitCode::FAILURE;
        }
    };
    obs::trace::set_export_meta("fault_plan_hash", repro.plan_hash.clone());
    match replay_repro(&repro) {
        Ok(true) => {
            println!(
                "repro {}: SLO '{}' violation REPRODUCES ({} fault events)",
                repro.plan_hash,
                repro.slo,
                repro.plan.events().len()
            );
            ExitCode::SUCCESS
        }
        Ok(false) => {
            println!(
                "repro {}: SLO '{}' violation did NOT reproduce",
                repro.plan_hash, repro.slo
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            report::line(&format!("replay failed: {e}"));
            ExitCode::FAILURE
        }
    }
}

/// `sonet chaos`: drive a deterministic fault-injection campaign —
/// generative profiles × seeds, fault-free twins, recovery-SLO
/// evaluation, and automatic shrinking of violating fault plans.
/// Campaign completion is success regardless of SLO verdicts (violations
/// are results, written to the report); only infrastructure failures
/// exit nonzero.
fn cmd_chaos(args: &[String]) -> ExitCode {
    let opts = parse_common(args);
    let flags = match parse_chaos(args) {
        Ok(f) => f,
        Err(e) => {
            report::line(&e);
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &flags.replay {
        return cmd_chaos_replay(path);
    }
    let profiles = match ChaosProfile::select(&flags.profiles) {
        Ok(p) => p,
        Err(e) => {
            report::line(&e);
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = CampaignConfig::new(profiles, flags.seeds, opts.seed);
    if let Some(ms) = flags.duration_ms {
        cfg.duration = SimDuration::from_millis(ms);
    }
    if let Some(n) = flags.max_shrinks {
        cfg.max_shrinks = n;
    }
    cfg.inject_known_bad = flags.inject_bad;
    cfg.fidelity = opts.fidelity;

    let campaign_id = cfg.campaign_id();
    obs::trace::set_export_meta("campaign_id", campaign_id.clone());
    let mut runinfo = cli_runinfo("chaos", &opts);
    if let Some(info) = runinfo.as_mut() {
        info.campaign_id = Some(campaign_id.clone());
    }

    match run_campaign(&cfg, Some(&flags.out_dir), flags.resume) {
        Ok(rep) => {
            print!("{}", rep.render());
            report::line(&format!(
                "campaign report: {}",
                flags.out_dir.join("campaign-report.json").display()
            ));
            if let Some(info) = runinfo.as_mut() {
                for r in rep.runs.iter().filter(|r| !r.pass) {
                    info.note(format!(
                        "{} seed={}: {}",
                        r.profile,
                        r.seed,
                        if r.status == "ok" {
                            "SLO violated".to_owned()
                        } else {
                            r.status.clone()
                        }
                    ));
                }
            }
            finish_cli_runinfo(
                runinfo,
                format!(
                    "completed: {} passed, {} violated, {} infra-failed",
                    rep.passed, rep.violated, rep.infra_failed
                ),
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            report::line(&format!("chaos campaign failed: {e}"));
            finish_cli_runinfo(runinfo, format!("failed: {e}"));
            ExitCode::FAILURE
        }
    }
}

fn cmd_capture(args: &[String]) -> ExitCode {
    let opts = parse_common(args);
    let flags = match parse_supervise(args) {
        Ok(f) => f,
        Err(e) => {
            report::line(&e);
            return ExitCode::FAILURE;
        }
    };
    let sup = supervise_options(&flags, &opts);
    let result = match &flags.resume {
        Some(path) => resume_capture(path, &sup),
        None => {
            let cfg = if opts.fast {
                CaptureConfig::fast(opts.seed)
            } else {
                CaptureConfig::standard(opts.seed)
            }
            .with_fidelity(opts.fidelity);
            run_capture(&cfg, &sup)
        }
    };
    match result {
        Ok((RunStatus::Completed, Some(cap))) => {
            println!(
                "capture complete: {} calls issued, {} packets mirrored \
                 ({} overflowed, {} fault-dropped){}",
                cap.issued_calls,
                cap.mirror_offered,
                cap.mirror_overflow,
                cap.mirror_fault_dropped,
                if cap.truncated { ", TRUNCATED" } else { "" },
            );
            ExitCode::SUCCESS
        }
        Ok((RunStatus::Stopped(reason), _)) => {
            report::line(&format!(
                "capture stopped ({reason}); resume with:\n  sonet capture --resume {}",
                sup.capture_checkpoint_path().display()
            ));
            ExitCode::from(EXIT_STOPPED)
        }
        Ok((RunStatus::Completed, None)) => unreachable!("completed runs carry results"),
        Err(e) => {
            report::line(&format!("capture failed: {e}"));
            ExitCode::FAILURE
        }
    }
}

fn cmd_fleet(args: &[String]) -> ExitCode {
    let opts = parse_common(args);
    let flags = match parse_supervise(args) {
        Ok(f) => f,
        Err(e) => {
            report::line(&e);
            return ExitCode::FAILURE;
        }
    };
    let sup = supervise_options(&flags, &opts);
    if opts.fidelity == FidelityMode::Hybrid {
        report::line(
            "note: the fleet tier samples flows directly; --fidelity=hybrid changes nothing there",
        );
    }
    let result = match &flags.resume {
        Some(path) => resume_fleet(path, &sup),
        None => {
            let cfg = if opts.fast {
                FleetRunConfig::fast(opts.seed)
            } else {
                FleetRunConfig::standard(opts.seed)
            };
            run_fleet(&cfg, &sup)
        }
    };
    match result {
        Ok((RunStatus::Completed, Some(data))) => {
            println!(
                "fleet run complete: {} tagged rows ({} relaxed picks, {} agent-dropped); \
                 samples spooled at {}",
                data.table.len(),
                data.relaxed_picks,
                data.agent_dropped,
                sup.fleet_spool_path().display(),
            );
            ExitCode::SUCCESS
        }
        Ok((RunStatus::Stopped(reason), _)) => {
            report::line(&format!(
                "fleet run stopped ({reason}); resume with:\n  sonet fleet --resume {}",
                sup.fleet_checkpoint_path().display()
            ));
            ExitCode::from(EXIT_STOPPED)
        }
        Ok((RunStatus::Completed, None)) => unreachable!("completed runs carry results"),
        Err(e) => {
            report::line(&format!("fleet run failed: {e}"));
            ExitCode::FAILURE
        }
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let Some(id) = args.first() else {
        report::line("usage: sonet run <id> [--seed N] [--fast] [--threads N]");
        return ExitCode::FAILURE;
    };
    if !EXPERIMENTS.iter().any(|(e, _)| e == id) {
        report::line(&format!("unknown experiment '{id}' (try `sonet list`)"));
        return ExitCode::FAILURE;
    }
    let opts = parse_common(&args[1..]);
    let runinfo = cli_runinfo(&format!("run {id}"), &opts);
    let cfg = lab_config(&opts);
    let needs = experiment_needs(id);
    let capture = needs.capture.then(|| StandardCapture::run(&cfg.capture));
    let fleet = match needs
        .fleet
        .then(|| FleetData::run_with(&cfg.fleet, cfg.threads))
        .transpose()
    {
        Ok(f) => f,
        Err(e) => {
            report::line(&format!("fleet run failed: {e}"));
            finish_cli_runinfo(runinfo, format!("failed: {e}"));
            return ExitCode::FAILURE;
        }
    };
    match render_report(id, capture.as_ref(), fleet.as_ref(), &cfg.fig15) {
        Ok(out) => {
            println!("{out}");
            finish_cli_runinfo(runinfo, "completed".to_owned());
            ExitCode::SUCCESS
        }
        Err(e) => {
            report::line(&e);
            finish_cli_runinfo(runinfo, format!("failed: {e}"));
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let obs_flags = match parse_obs(&args) {
        Ok(f) => f,
        Err(e) => {
            report::line(&e);
            return ExitCode::FAILURE;
        }
    };
    obs::set_mode(obs_flags.mode);
    let code = dispatch(&args);
    finish_obs(&obs_flags);
    code
}

fn dispatch(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("experiments:");
            for (id, what) in EXPERIMENTS {
                println!("  {id:<8} {what}");
            }
            ExitCode::SUCCESS
        }
        Some("run") => cmd_run(&args[1..]),
        Some("all") => cmd_all(&args[1..]),
        Some("capture") => cmd_capture(&args[1..]),
        Some("fleet") => cmd_fleet(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("export-fleet") => {
            let Some(path) = args.get(1) else {
                report::line("usage: sonet export-fleet <out.jsonl> [--seed N] [--fast]");
                return ExitCode::FAILURE;
            };
            let opts = parse_common(&args[2..]);
            let cfg = if opts.fast {
                FleetRunConfig::fast(opts.seed)
            } else {
                FleetRunConfig::standard(opts.seed)
            };
            let fleet = match FleetData::run(&cfg) {
                Ok(f) => f,
                Err(e) => {
                    report::line(&format!("fleet run failed: {e}"));
                    return ExitCode::FAILURE;
                }
            };
            let records: Vec<_> = fleet.table.rows().iter().map(|r| r.rec).collect();
            let file = match std::fs::File::create(path) {
                Ok(f) => f,
                Err(e) => {
                    report::line(&format!("cannot create {path}: {e}"));
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = sonet_dc::telemetry::export::write_flows(file, &records) {
                report::line(&format!("export failed: {e}"));
                return ExitCode::FAILURE;
            }
            println!("wrote {} Fbflow samples to {path}", records.len());
            ExitCode::SUCCESS
        }
        Some("export-matrix") => {
            let Some(path) = args.get(1) else {
                report::line("usage: sonet export-matrix <out.csv> [--seed N] [--fast]");
                return ExitCode::FAILURE;
            };
            let opts = parse_common(&args[2..]);
            let cfg = if opts.fast {
                FleetRunConfig::fast(opts.seed)
            } else {
                FleetRunConfig::standard(opts.seed)
            };
            let fleet = match FleetData::run(&cfg) {
                Ok(f) => f,
                Err(e) => {
                    report::line(&format!("fleet run failed: {e}"));
                    return ExitCode::FAILURE;
                }
            };
            let f5 = match reports::fig5(&fleet) {
                Ok(f) => f,
                Err(e) => {
                    report::line(&format!("fig5 failed: {e}"));
                    return ExitCode::FAILURE;
                }
            };
            let file = match std::fs::File::create(path) {
                Ok(f) => f,
                Err(e) => {
                    report::line(&format!("cannot create {path}: {e}"));
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = sonet_dc::telemetry::export::write_matrix_csv(file, &f5.frontend_matrix)
            {
                report::line(&format!("export failed: {e}"));
                return ExitCode::FAILURE;
            }
            println!("wrote frontend rack-to-rack matrix to {path}");
            ExitCode::SUCCESS
        }
        _ => {
            report::line(
                "sonet — reproduce 'Inside the Social Network's (Datacenter) Network'\n\
                 usage:\n\
                 \x20 sonet list\n\
                 \x20 sonet run <id> [--seed N] [--fast] [--threads N]\n\
                 \x20 sonet all [--seed N] [--fast] [--threads N] [--max-wall-secs N]\n\
                 \x20 sonet capture [--seed N] [--fast] [--threads N] [--checkpoint DIR]\n\
                 \x20               [--every-ms N] [--resume FILE] [--max-wall-secs N]\n\
                 \x20               [--max-events N] [--max-rss-mb N] [--audit on|off]\n\
                 \x20 sonet fleet   [--seed N] [--fast] [--threads N] [--checkpoint DIR]\n\
                 \x20               [--chunk-hosts N] [--resume FILE] [--max-wall-secs N]\n\
                 \x20               [--max-events N] [--max-rss-mb N] [--audit on|off]\n\
                 \x20 sonet chaos   [--profiles all|a,b,…] [--seeds N] [--seed BASE]\n\
                 \x20               [--duration-ms N] [--out DIR] [--resume] [--threads N]\n\
                 \x20               [--max-shrinks N] [--inject-bad] [--replay FILE]\n\
                 \x20 sonet export-fleet <out.jsonl> [--seed N] [--fast]\n\
                 \x20 sonet export-matrix <out.csv> [--seed N] [--fast]\n\
                 run, capture, fleet, and chaos also take --fidelity packet|hybrid\n\
                 (default packet; hybrid advances bulk flows analytically outside\n\
                 fidelity islands — mirrored hosts, sampled switches, faulted paths)\n\
                 every command also takes --obs[=off|summary|deep] and --trace-out FILE\n\
                 supervised runs exit 2 when a budget stops them (resumable)",
            );
            ExitCode::FAILURE
        }
    }
}
