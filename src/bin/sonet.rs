//! `sonet` — command-line front end for the sonet-dc reproduction.
//!
//! ```text
//! sonet list                         list experiment ids
//! sonet run <id> [--seed N] [--fast] regenerate one table/figure
//! sonet all [--seed N] [--fast]      regenerate everything
//! sonet export-fleet <out.jsonl>     dump a fleet-tier Fbflow day
//! sonet export-matrix <out.csv>      dump the Fig 5 frontend rack matrix
//! ```

use sonet_dc::core::reports;
use sonet_dc::core::{FleetData, FleetRunConfig, Lab, LabConfig};
use std::process::ExitCode;

const EXPERIMENTS: &[(&str, &str)] = &[
    ("table2", "outbound traffic mix per host type (§3.2)"),
    ("table3", "traffic locality by cluster type (§4.3)"),
    ("table4", "heavy hitters in 1-ms intervals (§5.3)"),
    ("fig4", "per-second traffic locality (§4.2)"),
    ("fig5", "rack/cluster demand matrices (§4.3)"),
    ("fig6", "flow size CDFs by locality (§5.1)"),
    ("fig7", "flow duration CDFs by locality (§5.1)"),
    ("fig8", "per-destination-rack rate stability (§5.2)"),
    ("fig9", "cache-follower per-host flow sizes (§5.1)"),
    ("fig10", "heavy-hitter persistence (§5.3)"),
    ("fig11", "heavy hitters vs enclosing second (§5.3)"),
    ("fig12", "packet size distributions (§6.1)"),
    ("fig13", "Hadoop arrivals are not on/off (§6.2)"),
    ("fig14", "flow (SYN) inter-arrival (§6.2)"),
    ("fig15", "buffer occupancy / utilization / drops (§6.3)"),
    ("fig16", "concurrent racks per 5 ms (§6.4)"),
    ("fig17", "concurrent heavy-hitter racks per 5 ms (§6.4)"),
    ("util", "link utilization by fabric layer (§4.1)"),
    ("te", "traffic-engineering predictability (§5.4)"),
];

struct Options {
    seed: u64,
    fast: bool,
}

fn parse_common(args: &[String]) -> Options {
    let mut opts = Options {
        seed: 42,
        fast: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    opts.seed = v;
                }
            }
            "--fast" => opts.fast = true,
            _ => {}
        }
    }
    opts
}

fn lab_for(opts: &Options) -> Lab {
    if opts.fast {
        Lab::new(LabConfig::fast(opts.seed))
    } else {
        Lab::new(LabConfig::standard(opts.seed))
    }
}

fn run_one(lab: &mut Lab, id: &str) -> Result<(), String> {
    let out = match id {
        "table2" => lab.table2().render(),
        "table3" => lab.table3().render(),
        "table4" => lab.table4().render(),
        "fig4" => lab.fig4().render(),
        "fig5" => lab.fig5().render(),
        "fig6" => lab.fig6().render(),
        "fig7" => lab.fig7().render(),
        "fig8" => lab
            .fig8()
            .map(|r| r.render())
            .unwrap_or_else(|| "fig8: traces missing".into()),
        "fig9" => lab
            .fig9()
            .map(|r| r.render())
            .unwrap_or_else(|| "fig9: cache trace missing".into()),
        "fig10" => lab.fig10().render(),
        "fig11" => lab.fig11().render(),
        "fig12" => lab.fig12().render(),
        "fig13" => lab
            .fig13()
            .map(|r| r.render())
            .unwrap_or_else(|| "fig13: hadoop trace missing".into()),
        "fig14" => lab.fig14().render(),
        "fig15" => lab.fig15().render(),
        "fig16" => lab.fig16().render(),
        "fig17" => lab.fig17().render(),
        "util" => lab.utilization().render(),
        "te" => lab.te_predictability().render(),
        other => return Err(format!("unknown experiment '{other}' (try `sonet list`)")),
    };
    println!("{out}");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("experiments:");
            for (id, what) in EXPERIMENTS {
                println!("  {id:<8} {what}");
            }
            ExitCode::SUCCESS
        }
        Some("run") => {
            let Some(id) = args.get(1) else {
                eprintln!("usage: sonet run <id> [--seed N] [--fast]");
                return ExitCode::FAILURE;
            };
            let opts = parse_common(&args[2..]);
            let mut lab = lab_for(&opts);
            match run_one(&mut lab, id) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("all") => {
            let opts = parse_common(&args[1..]);
            let mut lab = lab_for(&opts);
            for (id, _) in EXPERIMENTS {
                if let Err(e) = run_one(&mut lab, id) {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Some("export-fleet") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: sonet export-fleet <out.jsonl> [--seed N] [--fast]");
                return ExitCode::FAILURE;
            };
            let opts = parse_common(&args[2..]);
            let cfg = if opts.fast {
                FleetRunConfig::fast(opts.seed)
            } else {
                FleetRunConfig::standard(opts.seed)
            };
            let fleet = FleetData::run(&cfg);
            let records: Vec<_> = fleet.table.rows().iter().map(|r| r.rec).collect();
            let file = match std::fs::File::create(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot create {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = sonet_dc::telemetry::export::write_flows(file, &records) {
                eprintln!("export failed: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {} Fbflow samples to {path}", records.len());
            ExitCode::SUCCESS
        }
        Some("export-matrix") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: sonet export-matrix <out.csv> [--seed N] [--fast]");
                return ExitCode::FAILURE;
            };
            let opts = parse_common(&args[2..]);
            let cfg = if opts.fast {
                FleetRunConfig::fast(opts.seed)
            } else {
                FleetRunConfig::standard(opts.seed)
            };
            let fleet = FleetData::run(&cfg);
            let f5 = reports::fig5(&fleet);
            let file = match std::fs::File::create(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot create {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = sonet_dc::telemetry::export::write_matrix_csv(file, &f5.frontend_matrix)
            {
                eprintln!("export failed: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote frontend rack-to-rack matrix to {path}");
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "sonet — reproduce 'Inside the Social Network's (Datacenter) Network'\n\
                 usage:\n\
                 \x20 sonet list\n\
                 \x20 sonet run <id> [--seed N] [--fast]\n\
                 \x20 sonet all [--seed N] [--fast]\n\
                 \x20 sonet export-fleet <out.jsonl> [--seed N] [--fast]\n\
                 \x20 sonet export-matrix <out.csv> [--seed N] [--fast]"
            );
            ExitCode::FAILURE
        }
    }
}
