//! `sonet` — command-line front end for the sonet-dc reproduction.
//!
//! ```text
//! sonet list                         list experiment ids
//! sonet run <id> [--seed N] [--fast] regenerate one table/figure
//! sonet all [--seed N] [--fast]      regenerate everything (panic-isolated)
//! sonet capture [opts]               supervised packet-tier capture
//! sonet fleet [opts]                 supervised fleet-tier run
//! sonet export-fleet <out.jsonl>     dump a fleet-tier Fbflow day
//! sonet export-matrix <out.csv>      dump the Fig 5 frontend rack matrix
//! ```
//!
//! Supervised runs (`capture`, `fleet`) checkpoint to `--checkpoint DIR`
//! at regular intervals, audit engine invariants at every checkpoint
//! boundary (in debug builds or with the `audit` feature), stop cleanly
//! when a `--max-*` budget trips (exit code 2, resumable), and pick up
//! from a prior checkpoint with `--resume FILE` — producing final results
//! byte-identical to an uninterrupted run.

use sonet_dc::core::reports;
use sonet_dc::core::supervised::{
    resume_capture, resume_fleet, run_capture, run_fleet, RunStatus, SuperviseOptions,
};
use sonet_dc::core::supervisor::{isolate, BatchSummary, RunBudget};
use sonet_dc::core::{CaptureConfig, FleetData, FleetRunConfig, Lab, LabConfig};
use sonet_dc::util::SimDuration;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const EXPERIMENTS: &[(&str, &str)] = &[
    ("table2", "outbound traffic mix per host type (§3.2)"),
    ("table3", "traffic locality by cluster type (§4.3)"),
    ("table4", "heavy hitters in 1-ms intervals (§5.3)"),
    ("fig4", "per-second traffic locality (§4.2)"),
    ("fig5", "rack/cluster demand matrices (§4.3)"),
    ("fig6", "flow size CDFs by locality (§5.1)"),
    ("fig7", "flow duration CDFs by locality (§5.1)"),
    ("fig8", "per-destination-rack rate stability (§5.2)"),
    ("fig9", "cache-follower per-host flow sizes (§5.1)"),
    ("fig10", "heavy-hitter persistence (§5.3)"),
    ("fig11", "heavy hitters vs enclosing second (§5.3)"),
    ("fig12", "packet size distributions (§6.1)"),
    ("fig13", "Hadoop arrivals are not on/off (§6.2)"),
    ("fig14", "flow (SYN) inter-arrival (§6.2)"),
    ("fig15", "buffer occupancy / utilization / drops (§6.3)"),
    ("fig16", "concurrent racks per 5 ms (§6.4)"),
    ("fig17", "concurrent heavy-hitter racks per 5 ms (§6.4)"),
    ("util", "link utilization by fabric layer (§4.1)"),
    ("te", "traffic-engineering predictability (§5.4)"),
];

/// Exit code for a budget-stopped (resumable) supervised run.
const EXIT_STOPPED: u8 = 2;

struct Options {
    seed: u64,
    fast: bool,
}

/// Supervision flags shared by `capture` and `fleet`.
struct SuperviseFlags {
    checkpoint_dir: PathBuf,
    every_ms: Option<u64>,
    resume: Option<PathBuf>,
    budget: RunBudget,
    audit: Option<bool>,
    chunk_hosts: Option<u32>,
}

fn parse_common(args: &[String]) -> Options {
    let mut opts = Options {
        seed: 42,
        fast: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    opts.seed = v;
                }
            }
            "--fast" => opts.fast = true,
            _ => {}
        }
    }
    opts
}

fn parse_supervise(args: &[String]) -> Result<SuperviseFlags, String> {
    let mut flags = SuperviseFlags {
        checkpoint_dir: PathBuf::from("sonet-checkpoints"),
        every_ms: None,
        resume: None,
        budget: RunBudget::unlimited(),
        audit: None,
        chunk_hosts: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--checkpoint" => flags.checkpoint_dir = PathBuf::from(value("--checkpoint")?),
            "--every-ms" => {
                flags.every_ms = Some(
                    value("--every-ms")?
                        .parse()
                        .map_err(|e| format!("--every-ms: {e}"))?,
                )
            }
            "--resume" => flags.resume = Some(PathBuf::from(value("--resume")?)),
            "--max-wall-secs" => {
                let secs: u64 = value("--max-wall-secs")?
                    .parse()
                    .map_err(|e| format!("--max-wall-secs: {e}"))?;
                flags.budget.wall_clock = Some(Duration::from_secs(secs));
            }
            "--max-events" => {
                flags.budget.max_events = Some(
                    value("--max-events")?
                        .parse()
                        .map_err(|e| format!("--max-events: {e}"))?,
                )
            }
            "--max-rss-mb" => {
                let mb: u64 = value("--max-rss-mb")?
                    .parse()
                    .map_err(|e| format!("--max-rss-mb: {e}"))?;
                flags.budget.max_peak_rss = Some(mb * 1024 * 1024);
            }
            "--audit" => {
                flags.audit = match value("--audit")?.as_str() {
                    "on" => Some(true),
                    "off" => Some(false),
                    other => return Err(format!("--audit takes on|off, not '{other}'")),
                }
            }
            "--chunk-hosts" => {
                flags.chunk_hosts = Some(
                    value("--chunk-hosts")?
                        .parse()
                        .map_err(|e| format!("--chunk-hosts: {e}"))?,
                )
            }
            _ => {}
        }
    }
    Ok(flags)
}

fn supervise_options(flags: &SuperviseFlags) -> SuperviseOptions {
    let mut opts = SuperviseOptions::new(&flags.checkpoint_dir);
    if let Some(ms) = flags.every_ms {
        opts.every = SimDuration::from_millis(ms);
    }
    if let Some(hosts) = flags.chunk_hosts {
        opts.hosts_per_chunk = hosts;
    }
    opts.budget = flags.budget.clone();
    opts.audit = flags.audit;
    opts
}

fn lab_for(opts: &Options) -> Lab {
    if opts.fast {
        Lab::new(LabConfig::fast(opts.seed))
    } else {
        Lab::new(LabConfig::standard(opts.seed))
    }
}

fn run_one(lab: &mut Lab, id: &str) -> Result<(), String> {
    let out = match id {
        "table2" => lab.table2().render(),
        "table3" => lab.table3().render(),
        "table4" => lab.table4().render(),
        "fig4" => lab.fig4().render(),
        "fig5" => lab.fig5().render(),
        "fig6" => lab.fig6().render(),
        "fig7" => lab.fig7().render(),
        "fig8" => lab
            .fig8()
            .map(|r| r.render())
            .unwrap_or_else(|| "fig8: traces missing".into()),
        "fig9" => lab
            .fig9()
            .map(|r| r.render())
            .unwrap_or_else(|| "fig9: cache trace missing".into()),
        "fig10" => lab.fig10().render(),
        "fig11" => lab.fig11().render(),
        "fig12" => lab.fig12().render(),
        "fig13" => lab
            .fig13()
            .map(|r| r.render())
            .unwrap_or_else(|| "fig13: hadoop trace missing".into()),
        "fig14" => lab.fig14().render(),
        "fig15" => lab.fig15().render(),
        "fig16" => lab.fig16().render(),
        "fig17" => lab.fig17().render(),
        "util" => lab.utilization().render(),
        "te" => lab.te_predictability().render(),
        other => return Err(format!("unknown experiment '{other}' (try `sonet list`)")),
    };
    println!("{out}");
    Ok(())
}

fn cmd_capture(args: &[String]) -> ExitCode {
    let opts = parse_common(args);
    let flags = match parse_supervise(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let sup = supervise_options(&flags);
    let result = match &flags.resume {
        Some(path) => resume_capture(path, &sup),
        None => {
            let cfg = if opts.fast {
                CaptureConfig::fast(opts.seed)
            } else {
                CaptureConfig::standard(opts.seed)
            };
            run_capture(&cfg, &sup)
        }
    };
    match result {
        Ok((RunStatus::Completed, Some(cap))) => {
            println!(
                "capture complete: {} calls issued, {} packets mirrored \
                 ({} overflowed, {} fault-dropped){}",
                cap.issued_calls,
                cap.mirror_offered,
                cap.mirror_overflow,
                cap.mirror_fault_dropped,
                if cap.truncated { ", TRUNCATED" } else { "" },
            );
            ExitCode::SUCCESS
        }
        Ok((RunStatus::Stopped(reason), _)) => {
            eprintln!(
                "capture stopped ({reason}); resume with:\n  sonet capture --resume {}",
                sup.capture_checkpoint_path().display()
            );
            ExitCode::from(EXIT_STOPPED)
        }
        Ok((RunStatus::Completed, None)) => unreachable!("completed runs carry results"),
        Err(e) => {
            eprintln!("capture failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_fleet(args: &[String]) -> ExitCode {
    let opts = parse_common(args);
    let flags = match parse_supervise(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let sup = supervise_options(&flags);
    let result = match &flags.resume {
        Some(path) => resume_fleet(path, &sup),
        None => {
            let cfg = if opts.fast {
                FleetRunConfig::fast(opts.seed)
            } else {
                FleetRunConfig::standard(opts.seed)
            };
            run_fleet(&cfg, &sup)
        }
    };
    match result {
        Ok((RunStatus::Completed, Some(data))) => {
            println!(
                "fleet run complete: {} tagged rows ({} relaxed picks, {} agent-dropped); \
                 samples spooled at {}",
                data.table.len(),
                data.relaxed_picks,
                data.agent_dropped,
                sup.fleet_spool_path().display(),
            );
            ExitCode::SUCCESS
        }
        Ok((RunStatus::Stopped(reason), _)) => {
            eprintln!(
                "fleet run stopped ({reason}); resume with:\n  sonet fleet --resume {}",
                sup.fleet_checkpoint_path().display()
            );
            ExitCode::from(EXIT_STOPPED)
        }
        Ok((RunStatus::Completed, None)) => unreachable!("completed runs carry results"),
        Err(e) => {
            eprintln!("fleet run failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("experiments:");
            for (id, what) in EXPERIMENTS {
                println!("  {id:<8} {what}");
            }
            ExitCode::SUCCESS
        }
        Some("run") => {
            let Some(id) = args.get(1) else {
                eprintln!("usage: sonet run <id> [--seed N] [--fast]");
                return ExitCode::FAILURE;
            };
            let opts = parse_common(&args[2..]);
            let mut lab = lab_for(&opts);
            match run_one(&mut lab, id) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("all") => {
            let opts = parse_common(&args[1..]);
            let mut lab = lab_for(&opts);
            // Each experiment is panic-isolated: one blowing up must not
            // cost the others already (or yet to be) computed.
            let mut batch = BatchSummary::new();
            for (id, _) in EXPERIMENTS {
                let outcome = match isolate(AssertUnwindSafe(|| run_one(&mut lab, id))) {
                    Ok(Ok(())) => Ok("rendered".to_string()),
                    Ok(Err(e)) => Err(e),
                    Err(panic_msg) => Err(format!("panicked: {panic_msg}")),
                };
                batch.push(*id, outcome);
            }
            eprint!("{}", batch.render());
            if batch.all_ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Some("capture") => cmd_capture(&args[1..]),
        Some("fleet") => cmd_fleet(&args[1..]),
        Some("export-fleet") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: sonet export-fleet <out.jsonl> [--seed N] [--fast]");
                return ExitCode::FAILURE;
            };
            let opts = parse_common(&args[2..]);
            let cfg = if opts.fast {
                FleetRunConfig::fast(opts.seed)
            } else {
                FleetRunConfig::standard(opts.seed)
            };
            let fleet = match FleetData::run(&cfg) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("fleet run failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let records: Vec<_> = fleet.table.rows().iter().map(|r| r.rec).collect();
            let file = match std::fs::File::create(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot create {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = sonet_dc::telemetry::export::write_flows(file, &records) {
                eprintln!("export failed: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {} Fbflow samples to {path}", records.len());
            ExitCode::SUCCESS
        }
        Some("export-matrix") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: sonet export-matrix <out.csv> [--seed N] [--fast]");
                return ExitCode::FAILURE;
            };
            let opts = parse_common(&args[2..]);
            let cfg = if opts.fast {
                FleetRunConfig::fast(opts.seed)
            } else {
                FleetRunConfig::standard(opts.seed)
            };
            let fleet = match FleetData::run(&cfg) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("fleet run failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let f5 = match reports::fig5(&fleet) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("fig5 failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let file = match std::fs::File::create(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot create {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = sonet_dc::telemetry::export::write_matrix_csv(file, &f5.frontend_matrix)
            {
                eprintln!("export failed: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote frontend rack-to-rack matrix to {path}");
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "sonet — reproduce 'Inside the Social Network's (Datacenter) Network'\n\
                 usage:\n\
                 \x20 sonet list\n\
                 \x20 sonet run <id> [--seed N] [--fast]\n\
                 \x20 sonet all [--seed N] [--fast]\n\
                 \x20 sonet capture [--seed N] [--fast] [--checkpoint DIR] [--every-ms N]\n\
                 \x20               [--resume FILE] [--max-wall-secs N] [--max-events N]\n\
                 \x20               [--max-rss-mb N] [--audit on|off]\n\
                 \x20 sonet fleet   [--seed N] [--fast] [--checkpoint DIR] [--chunk-hosts N]\n\
                 \x20               [--resume FILE] [--max-wall-secs N] [--max-events N]\n\
                 \x20               [--max-rss-mb N] [--audit on|off]\n\
                 \x20 sonet export-fleet <out.jsonl> [--seed N] [--fast]\n\
                 \x20 sonet export-matrix <out.csv> [--seed N] [--fast]\n\
                 supervised runs exit 2 when a budget stops them (resumable)"
            );
            ExitCode::FAILURE
        }
    }
}
