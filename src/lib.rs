//! # sonet-dc
//!
//! A full reproduction of **Inside the Social Network's (Datacenter)
//! Network** (Roy, Zeng, Bagga, Porter, Snoeren — SIGCOMM 2015) as a Rust
//! library: a packet-level datacenter simulator, service workload models,
//! the paper's measurement infrastructure (Fbflow sampling and port
//! mirroring), and the analysis pipeline that regenerates every table and
//! figure of the paper's evaluation.
//!
//! This crate is a facade: it re-exports the workspace's crates under one
//! name. Start with [`core::Lab`]:
//!
//! ```no_run
//! use sonet_dc::core::{Lab, LabConfig};
//!
//! let mut lab = Lab::new(LabConfig::fast(42));
//! println!("{}", lab.table2().render()); // Table 2, paper vs measured
//! println!("{}", lab.fig12().render());  // packet size distributions
//! ```
//!
//! See `DESIGN.md` for the system inventory and the per-experiment index,
//! and `EXPERIMENTS.md` for paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Flow/locality/heavy-hitter/packet analyses.
pub use sonet_analysis as analysis;
/// Scenarios, the experiment Lab, and per-figure reports.
pub use sonet_core as core;
/// Discrete-event packet simulator.
pub use sonet_netsim as netsim;
/// Fbflow, port mirroring, Scuba-like storage.
pub use sonet_telemetry as telemetry;
/// Datacenter topology: clusters, racks, 4-post Clos, locality.
pub use sonet_topology as topology;
/// Statistics, distributions, RNG, simulated time.
pub use sonet_util as util;
/// Service workload models (Web, cache, Hadoop, …) and baselines.
pub use sonet_workload as workload;
