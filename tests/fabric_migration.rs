//! §3.1's Fabric migration claim: "the rack-to-rack traffic matrix of a
//! Frontend 'cluster' inside one of the new Fabric datacenters ... looks
//! similar to that shown in Figure 5."
//!
//! We rebuild the fleet plant as Fabric pods (same racks, same logical
//! order, uniform pods) and check that the *logical* frontend block keeps
//! its structure: minimal diagonal, strong Web↔cache bipartite share.

use sonet_dc::telemetry::Tagger;
use sonet_dc::topology::{fabric_like_spec, ClusterSpec, HostRole, RackId, Topology, TopologySpec};
use sonet_dc::workload::{FleetConfig, FleetModel};
use std::sync::Arc;

fn bipartite_and_diag(
    topo: &Topology,
    racks: &[RackId],
    table: &sonet_dc::telemetry::ScubaTable,
) -> (f64, f64) {
    let set: std::collections::HashSet<RackId> = racks.iter().copied().collect();
    let mut total = 0u64;
    let mut diag = 0u64;
    let mut web_cache = 0u64;
    for row in table.rows() {
        if !set.contains(&row.src_rack) || !set.contains(&row.dst_rack) {
            continue;
        }
        total += row.rec.bytes;
        if row.src_rack == row.dst_rack {
            diag += row.rec.bytes;
        }
        let ri = topo.rack(row.src_rack).role;
        let rj = topo.rack(row.dst_rack).role;
        if matches!(
            (ri, rj),
            (HostRole::Web, HostRole::CacheFollower) | (HostRole::CacheFollower, HostRole::Web)
        ) {
            web_cache += row.rec.bytes;
        }
    }
    if total == 0 {
        return (0.0, 0.0);
    }
    (web_cache as f64 / total as f64, diag as f64 / total as f64)
}

#[test]
fn frontend_matrix_structure_survives_fabric_migration() {
    // A clustered plant whose first 16 racks are one frontend cluster.
    let clustered_spec = TopologySpec::single_dc(vec![
        ClusterSpec::frontend(16, 4),
        ClusterSpec::hadoop(8, 4),
        ClusterSpec::cache(4, 4),
        ClusterSpec::database(4, 4),
        ClusterSpec::service(4, 4),
    ]);
    let fabric_spec = fabric_like_spec(&clustered_spec);

    let measure = |spec: TopologySpec| {
        let topo = Arc::new(Topology::build(spec).expect("valid"));
        let mut model = FleetModel::new(
            Arc::clone(&topo),
            FleetConfig {
                samples_per_host: 80,
                ..FleetConfig::default()
            },
            77,
        );
        let table = Tagger::new(&topo).ingest(model.generate());
        // The logical frontend block is the first 16 rack positions in
        // both plants (fabric preserves rack order).
        let racks: Vec<RackId> = (0..16).map(RackId).collect();
        bipartite_and_diag(&topo, &racks, &table)
    };

    let (bip_clustered, diag_clustered) = measure(clustered_spec);
    let (bip_fabric, diag_fabric) = measure(fabric_spec);

    // Both plants show the bipartite web<->cache structure with minimal
    // diagonal...
    assert!(bip_clustered > 0.4, "clustered bipartite {bip_clustered}");
    assert!(bip_fabric > 0.4, "fabric bipartite {bip_fabric}");
    assert!(diag_clustered < 0.15, "clustered diag {diag_clustered}");
    assert!(diag_fabric < 0.15, "fabric diag {diag_fabric}");
    // ...and the fabric numbers track the clustered ones (the paper's
    // "looks similar").
    assert!(
        (bip_fabric - bip_clustered).abs() < 0.25,
        "bipartite share moved too much: {bip_clustered} -> {bip_fabric}"
    );
}
