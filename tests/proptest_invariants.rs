//! Property-based tests over cross-crate invariants: random plants,
//! random traffic, and the analysis primitives' defining properties.

use proptest::prelude::*;
use sonet_dc::netsim::{NullTap, SimConfig, Simulator};
use sonet_dc::topology::{
    ClusterSpec, DatacenterSpec, HostId, Locality, Node, SiteSpec, Topology, TopologySpec,
};
use sonet_dc::util::{EmpiricalCdf, SimDuration, SimTime};
use std::sync::Arc;

/// Strategy: a random multi-datacenter plant.
fn arb_spec() -> impl Strategy<Value = TopologySpec> {
    (
        4u32..10,  // frontend racks
        1u32..4,   // hadoop racks
        1u32..3,   // cache racks
        2u32..6,   // hosts per rack
        1usize..3, // number of sites
    )
        .prop_map(|(fe, hd, ca, hosts, sites)| {
            let dc = DatacenterSpec {
                clusters: vec![
                    ClusterSpec::frontend(fe, hosts),
                    ClusterSpec::hadoop(hd, hosts),
                    ClusterSpec::cache(ca, hosts),
                ],
            };
            TopologySpec {
                sites: (0..sites)
                    .map(|_| SiteSpec {
                        datacenters: vec![dc.clone()],
                    })
                    .collect(),
                ..TopologySpec::default()
            }
        })
}

/// Strategy: any fault kind, including the gray-failure and flap variants
/// the chaos subsystem introduced.
fn arb_fault_kind() -> impl Strategy<Value = sonet_dc::netsim::FaultKind> {
    use sonet_dc::netsim::FaultKind;
    use sonet_dc::topology::{LinkId, SwitchId};
    prop_oneof![
        (0u32..64).prop_map(|l| FaultKind::LinkDown(LinkId(l))),
        (0u32..64).prop_map(|l| FaultKind::LinkUp(LinkId(l))),
        (0u32..16).prop_map(|s| FaultKind::SwitchDown(SwitchId(s))),
        (0u32..16).prop_map(|s| FaultKind::SwitchUp(SwitchId(s))),
        (0u32..64, 0.01f64..1.0).prop_map(|(l, f)| FaultKind::DegradeLink {
            link: LinkId(l),
            rate_factor: f,
        }),
        (0u32..64, 0.0f64..1.0).prop_map(|(l, f)| FaultKind::GrayLink {
            link: LinkId(l),
            drop_fraction: f,
        }),
        (0u32..64, 1u64..5_000, 1u32..20).prop_map(|(l, half_us, cycles)| {
            FaultKind::FlapLink {
                link: LinkId(l),
                half_period: SimDuration::from_micros(half_us),
                cycles,
            }
        }),
        (0.0f64..1.0).prop_map(|f| FaultKind::MirrorLoss { fraction: f }),
        (0.0f64..1.0).prop_map(|f| FaultKind::FbflowLoss { fraction: f }),
    ]
}

/// Strategy: any chaos-profile element, bounds chosen to stay valid.
fn arb_chaos_element() -> impl Strategy<Value = sonet_dc::core::chaos::ChaosElement> {
    use sonet_dc::core::chaos::ChaosElement;
    prop_oneof![
        (1u32..4, any::<bool>())
            .prop_map(|(count, recover)| ChaosElement::RackOutage { count, recover }),
        (1u32..4, any::<bool>())
            .prop_map(|(csws, recover)| ChaosElement::PodOutage { csws, recover }),
        (1u32..4, 1u32..6).prop_map(|(links, cycles)| ChaosElement::LinkFlaps { links, cycles }),
        (1u32..4, 0.05f64..0.4).prop_map(|(links, lo)| ChaosElement::GrayCore {
            links,
            min_fraction: lo,
            max_fraction: lo + 0.3,
        }),
        (1u32..4).prop_map(|links| ChaosElement::AsymPartition { links }),
        (1u32..4, 1u32..5, 0.1f64..0.9).prop_map(|(links, steps, floor_factor)| {
            ChaosElement::DegradedRamp {
                links,
                steps,
                floor_factor,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every route is a valid chain from source NIC to destination NIC,
    /// regardless of plant shape, endpoints, or ECMP hash.
    #[test]
    fn routes_always_chain((spec, hash, pick) in (arb_spec(), any::<u64>(), any::<(u32, u32)>())) {
        let topo = Topology::build(spec).expect("generated specs are valid");
        let n = topo.hosts().len() as u32;
        let a = HostId(pick.0 % n);
        let b = HostId(pick.1 % n);
        prop_assume!(a != b);
        let path = topo.route(a, b, hash).expect("distinct endpoints");
        let links = topo.links();
        prop_assert_eq!(links[path[0].index()].from, Node::Host(a));
        prop_assert_eq!(links[path[path.len() - 1].index()].to, Node::Host(b));
        for w in path.windows(2) {
            prop_assert_eq!(links[w[0].index()].to, links[w[1].index()].from);
        }
        // Hop count is determined by locality.
        let expected = match topo.locality(a, b) {
            Locality::IntraRack => 2,
            Locality::IntraCluster => 4,
            Locality::IntraDatacenter => 6,
            Locality::InterDatacenter => 8,
        };
        prop_assert_eq!(path.len(), expected);
    }

    /// Locality is symmetric and consistent with shared containers.
    #[test]
    fn locality_is_symmetric((spec, pick) in (arb_spec(), any::<(u32, u32)>())) {
        let topo = Topology::build(spec).expect("valid");
        let n = topo.hosts().len() as u32;
        let a = HostId(pick.0 % n);
        let b = HostId(pick.1 % n);
        prop_assume!(a != b);
        prop_assert_eq!(topo.locality(a, b), topo.locality(b, a));
    }

    /// Transport conservation: whatever the message mix, the engine
    /// delivers exactly the request payload to the server side, and
    /// all requests complete in an uncongested plant.
    #[test]
    fn transport_conserves_payload(
        sizes in prop::collection::vec(1u64..200_000, 1..12),
        spacing_us in 1u64..5_000,
    ) {
        let topo = Arc::new(
            Topology::build(TopologySpec::single_dc(vec![ClusterSpec::frontend(4, 3)]))
                .expect("valid"),
        );
        let mut sim = Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap)
            .expect("config");
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        let total: u64 = sizes.iter().sum();
        for (i, &s) in sizes.iter().enumerate() {
            sim.send_message(
                conn,
                SimTime::from_micros(i as u64 * spacing_us),
                s,
                0,
                SimDuration::ZERO,
            )
            .expect("send");
        }
        sim.run_to_quiescence();
        let (out, _) = sim.finish();
        prop_assert_eq!(out.completed_requests, sizes.len() as u64);
        // Payload delivered = wire bytes on the destination downlink minus
        // framing of data packets minus control packets; instead check the
        // uplink carried at least the payload and no drops occurred.
        let up = topo.host_uplink(a);
        prop_assert!(out.link_counters[up.index()].tx_bytes >= total);
        prop_assert_eq!(out.link_counters[up.index()].drop_packets, 0);
    }

    /// The heavy-hitter set really is a minimal >= 50 % cover.
    #[test]
    fn heavy_hitters_cover_half_minimally(
        bytes in prop::collection::vec(1u64..1_000_000, 1..50),
    ) {
        use sonet_dc::analysis::heavy_hitters::{hitters_per_interval, HeavyHitterAgg};
        use sonet_dc::analysis::HostTrace;
        use sonet_dc::netsim::{ConnId, Dir, FlowKey, Packet, PacketKind};
        use sonet_dc::telemetry::PacketRecord;
        use sonet_dc::topology::LinkId;

        let topo = Topology::build(TopologySpec::single_dc(vec![ClusterSpec::frontend(
            6, 4,
        )]))
        .expect("valid");
        let src = topo.racks()[0].hosts[0];
        let dst = topo.racks()[1].hosts[0];
        // All packets in one 1-ms interval, one flow per entry.
        let records: Vec<PacketRecord> = bytes
            .iter()
            .enumerate()
            .map(|(i, &b)| PacketRecord {
                at: SimTime::from_micros(i as u64 % 900),
                link: LinkId(0),
                pkt: Packet {
                    conn: ConnId { idx: 0, gen: 0 },
                    key: FlowKey {
                        client: src,
                        server: dst,
                        client_port: i as u16,
                        server_port: 80,
                    },
                    dir: Dir::ClientToServer,
                    kind: PacketKind::Data { last_of_msg: false },
                    seq: 0,
                    msg: 0,
                    payload: 0,
                    wire_bytes: b.min(u32::MAX as u64) as u32,
                },
            })
            .collect();
        let trace = HostTrace::from_mirror(&records, src);
        let per = hitters_per_interval(
            &trace,
            &topo,
            SimDuration::from_millis(1),
            HeavyHitterAgg::Flow,
        );
        prop_assert_eq!(per.len(), 1);
        let hh = &per[0];
        let hh_bytes: u64 = hh.hitter_bytes.iter().sum();
        // Covers at least half...
        prop_assert!(hh_bytes * 2 >= hh.total_bytes);
        // ...and is minimal: dropping the smallest member goes below half.
        if hh.hitter_bytes.len() > 1 {
            let smallest = *hh.hitter_bytes.iter().min().expect("non-empty");
            prop_assert!((hh_bytes - smallest) * 2 < hh.total_bytes);
        }
    }

    /// A checkpoint taken at an *arbitrary* mid-run instant — not just a
    /// tidy window boundary — serializes, deserializes, and restores to
    /// an engine whose remaining run is byte-identical to the original's.
    #[test]
    fn engine_checkpoint_restores_byte_identically(
        ckpt_us in 100u64..3_000,
        sizes in prop::collection::vec(1u64..150_000, 1..10),
    ) {
        let topo = Arc::new(
            Topology::build(TopologySpec::single_dc(vec![ClusterSpec::frontend(4, 3)]))
                .expect("valid"),
        );
        let mut sim = Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap)
            .expect("config");
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        for (i, &s) in sizes.iter().enumerate() {
            sim.send_message(
                conn,
                SimTime::from_micros(i as u64 * 200),
                s,
                s / 2,
                SimDuration::ZERO,
            )
            .expect("send");
        }
        sim.run_until(SimTime::from_micros(ckpt_us));
        let ckpt = sim.checkpoint();
        let text = serde_json::to_string(&ckpt).expect("serializes");
        let back = serde_json::from_str(&text).expect("parses");
        let mut restored = Simulator::restore(Arc::clone(&topo), NullTap, back)
            .expect("restore");
        sim.run_to_quiescence();
        restored.run_to_quiescence();
        let (orig, _) = sim.finish();
        let (res, _) = restored.finish();
        prop_assert_eq!(
            serde_json::to_string(&orig).expect("json"),
            serde_json::to_string(&res).expect("json"),
            "restored engine must finish byte-identically"
        );
    }

    /// The partitioned calendar replays the serial run event for event on
    /// a *random* multi-DC plant with a random workload: same processed
    /// event count, same output bytes, at widths 2 and 8 — with the
    /// invariant auditor re-checking conservation and monotonicity at
    /// every lookahead barrier of the parallel runs.
    #[test]
    fn partitioned_run_matches_serial_event_for_event(
        spec in arb_spec(),
        conns in prop::collection::vec(
            (
                any::<(u32, u32)>(),
                0u64..2_000,
                prop::collection::vec((1u64..60_000, 0u64..4_000, 1u64..300), 1..5),
            ),
            1..10,
        ),
    ) {
        let topo = Arc::new(Topology::build(spec).expect("generated specs are valid"));
        let n = topo.hosts().len() as u32;
        let run = |width: usize, audit: bool| {
            let mut sim = Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap)
                .expect("config");
            sim.set_parallel_width(Some(width));
            sim.audit_every_barrier(audit);
            for (pick, start_us, msgs) in &conns {
                let a = HostId(pick.0 % n);
                let b = HostId(pick.1 % n);
                if a == b {
                    continue;
                }
                let conn = sim
                    .open_connection(SimTime::from_micros(*start_us), a, b, 80)
                    .expect("open");
                let mut t = *start_us;
                for &(req, resp, gap_us) in msgs {
                    sim.send_message(
                        conn,
                        SimTime::from_micros(t),
                        req,
                        resp,
                        SimDuration::from_micros(12),
                    )
                    .expect("send");
                    t += gap_us;
                }
            }
            sim.run_to_quiescence();
            let events = sim.processed_events();
            let (out, _) = sim.finish();
            (events, serde_json::to_string(&out).expect("json"))
        };
        let (serial_events, serial_out) = run(1, false);
        for w in [2usize, 8] {
            let (par_events, par_out) = run(w, true);
            prop_assert_eq!(serial_events, par_events, "event count diverged at width {}", w);
            prop_assert_eq!(&serial_out, &par_out, "outputs diverged at width {}", w);
        }
    }

    /// The runtime auditor holds at any instant of a healthy run: packet
    /// conservation, link-rate bounds, calendar monotonicity.
    #[test]
    fn audit_holds_at_any_instant(
        at_us in 1u64..5_000,
        sizes in prop::collection::vec(1u64..100_000, 1..8),
    ) {
        let topo = Arc::new(
            Topology::build(TopologySpec::single_dc(vec![ClusterSpec::frontend(4, 3)]))
                .expect("valid"),
        );
        let mut sim = Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap)
            .expect("config");
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[2].hosts[0];
        let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        for (i, &s) in sizes.iter().enumerate() {
            sim.send_message(
                conn,
                SimTime::from_micros(i as u64 * 150),
                s,
                0,
                SimDuration::ZERO,
            )
            .expect("send");
        }
        sim.run_until(SimTime::from_micros(at_us));
        if let Err(report) = sim.audit() {
            prop_assert!(false, "audit failed: {report}");
        }
    }

    /// Chunked fleet generation (what the supervised driver checkpoints
    /// between) emits exactly the one-shot sample stream for every chunk
    /// size, so a resumed fleet run tags an identical ScubaTable.
    #[test]
    fn fleet_chunked_generation_matches_one_shot(
        chunk in 1u32..40,
        seed in any::<u64>(),
    ) {
        use sonet_dc::core::{fleet_spec, ScenarioScale};
        use sonet_dc::workload::{FleetConfig, FleetModel};

        let topo = Arc::new(
            Topology::build(fleet_spec(ScenarioScale::Tiny)).expect("valid"),
        );
        let cfg = FleetConfig {
            samples_per_host: 5,
            ..FleetConfig::default()
        };
        let mut one_shot = FleetModel::new(Arc::clone(&topo), cfg.clone(), seed);
        let all = one_shot.generate();

        let mut chunked = FleetModel::new(Arc::clone(&topo), cfg, seed);
        let mut collected = Vec::new();
        while !chunked.exhausted() {
            collected.extend(chunked.generate_chunk(chunk));
        }
        collected.sort_by_key(|r| r.at);
        prop_assert_eq!(&all, &collected);
        prop_assert_eq!(one_shot.relaxed_picks(), chunked.relaxed_picks());
    }

    /// Any fault plan — every kind, including the gray-failure and flap
    /// variants — survives a JSON round trip exactly: same value, same
    /// canonical bytes, same FNV identity hash.
    #[test]
    fn fault_plan_serialization_round_trips(
        events in prop::collection::vec(
            (0u64..10_000, arb_fault_kind()),
            0..20,
        ),
    ) {
        use sonet_dc::core::chaos::plan_hash;
        use sonet_dc::netsim::FaultPlan;

        let mut plan = FaultPlan::new();
        for &(at_us, kind) in &events {
            plan = plan.at(SimTime::from_micros(at_us), kind);
        }
        let json = serde_json::to_string(&plan).expect("plan serializes");
        let back: FaultPlan = serde_json::from_str(&json).expect("plan parses");
        prop_assert_eq!(&back, &plan);
        prop_assert_eq!(
            serde_json::to_string(&back).expect("re-serializes"),
            json,
            "canonical bytes must be stable"
        );
        prop_assert_eq!(plan_hash(&back), plan_hash(&plan));
    }

    /// A chaos profile round-trips through JSON, and the parsed copy
    /// expands to the identical fault plan — the property the committed
    /// repro-file format depends on.
    #[test]
    fn chaos_profile_serialization_round_trips(
        elements in prop::collection::vec(arb_chaos_element(), 1..6),
        seed in any::<u64>(),
    ) {
        use sonet_dc::core::chaos::ChaosProfile;
        use sonet_dc::core::{packet_tier_spec, ScenarioScale};

        let profile = ChaosProfile {
            name: "prop-profile".into(),
            elements,
        };
        let json = serde_json::to_string(&profile).expect("profile serializes");
        let back: ChaosProfile = serde_json::from_str(&json).expect("profile parses");
        prop_assert_eq!(&back, &profile);

        let topo = Topology::build(packet_tier_spec(ScenarioScale::Tiny)).expect("valid");
        let horizon = SimDuration::from_millis(2_000);
        let plan = profile.generate(&topo, seed, horizon);
        prop_assert_eq!(back.generate(&topo, seed, horizon), plan);
    }

    /// CDF quantile/fraction are mutually consistent.
    #[test]
    fn cdf_quantile_fraction_consistent(
        mut samples in prop::collection::vec(-1e6f64..1e6, 2..200),
        q in 1.0f64..99.0,
    ) {
        samples.retain(|v| v.is_finite());
        prop_assume!(samples.len() >= 2);
        let n = samples.len() as f64;
        let cdf = EmpiricalCdf::new(samples);
        let v = cdf.quantile(q).expect("non-empty");
        let frac = cdf.fraction_at(v);
        // At least q% of samples are <= the q-quantile, up to the type-7
        // interpolation slack of one order statistic (1/n).
        prop_assert!(frac * 100.0 >= q - 100.0 / n - 1e-9, "q={q} frac={frac}");
        // Monotonicity of the inverse.
        let lo = cdf.quantile(q / 2.0).expect("non-empty");
        prop_assert!(lo <= v);
    }

    /// Forced-fast vs forced-packet on random traffic: the hybrid engine
    /// must complete the same requests, close its byte-conservation law
    /// exactly once drained, and land its FCT means within the
    /// calibrated error bound of the packet engine (tests/fidelity.rs
    /// calibrates the same bound on the standard workload).
    #[test]
    fn hybrid_fast_path_matches_packet_on_random_traffic(
        sizes in prop::collection::vec((1u64..150_000, 0u64..40_000), 1..8),
        spacing_us in 100u64..3_000,
        service_us in 0u64..200,
    ) {
        use sonet_dc::netsim::{FidelityConfig, FidelityMode};

        let topo = Arc::new(
            Topology::build(TopologySpec::single_dc(vec![ClusterSpec::frontend(4, 3)]))
                .expect("valid"),
        );
        let drive = |fidelity: FidelityMode| {
            let mut sim = Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap)
                .expect("config");
            if fidelity == FidelityMode::Hybrid {
                sim.set_fidelity(FidelityConfig::hybrid()).expect("hybrid");
            }
            sim.record_latencies(true);
            let a = topo.racks()[0].hosts[0];
            let b = topo.racks()[2].hosts[0];
            let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
            for (i, &(req, resp)) in sizes.iter().enumerate() {
                sim.send_message(
                    conn,
                    SimTime::from_micros(i as u64 * spacing_us),
                    req,
                    resp,
                    SimDuration::from_micros(service_us),
                )
                .expect("send");
            }
            sim.run_to_quiescence();
            sim.audit().expect("conservation");
            let (out, _) = sim.finish();
            out
        };
        let packet = drive(FidelityMode::Packet);
        let hybrid = drive(FidelityMode::Hybrid);

        prop_assert_eq!(packet.completed_requests, sizes.len() as u64);
        prop_assert_eq!(hybrid.completed_requests, packet.completed_requests);
        prop_assert_eq!(hybrid.flows_fast, 1, "the lone flow must plan fast");
        prop_assert_eq!(hybrid.flows_packet, 0);
        // Drained and fault-free: offered closes against completed alone.
        prop_assert_eq!(hybrid.fast_bytes_offered, hybrid.fast_bytes_completed);
        prop_assert_eq!(
            hybrid.fast_bytes_offered,
            sizes.iter().map(|&(r, p)| r + p).sum::<u64>()
        );

        let mean = |out: &sonet_dc::netsim::SimOutputs| {
            out.rpc_latencies.iter().map(|d| d.as_nanos() as f64).sum::<f64>()
                / out.rpc_latencies.len().max(1) as f64
        };
        let (mp, mh) = (mean(&packet), mean(&hybrid));
        // The fidelity harness's calibrated mean bound, with an absolute
        // floor for µs-scale means where one RTT of slack dominates.
        prop_assert!(
            (mh - mp).abs() <= (0.35 * mp).max(100_000.0),
            "hybrid mean FCT {mh:.0} ns drifted from packet {mp:.0} ns"
        );
    }

    /// A fault landing mid-flow on a fast route demotes the flow to the
    /// packet engine without breaking conservation: every offered byte is
    /// still accounted for across both calendars afterwards.
    #[test]
    fn demoted_fast_flows_keep_conservation(
        sizes in prop::collection::vec(1u64..100_000, 2..8),
        fault_at_us in 100u64..2_000,
        spacing_us in 100u64..1_000,
    ) {
        use sonet_dc::netsim::{FaultKind, FaultPlan, FidelityConfig};

        let topo = Arc::new(
            Topology::build(TopologySpec::single_dc(vec![ClusterSpec::frontend(4, 3)]))
                .expect("valid"),
        );
        let mut sim = Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap)
            .expect("config");
        sim.set_fidelity(FidelityConfig::hybrid()).expect("hybrid");
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[2].hosts[0];
        let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        // The flow plans fast on the clean plant; the fault then hits its
        // pinned route mid-life.
        let fault_at = SimTime::from_micros(fault_at_us);
        let plan = FaultPlan::new()
            .at(fault_at, FaultKind::LinkDown(topo.host_uplink(a)))
            .at(fault_at + SimDuration::from_millis(2), FaultKind::LinkUp(topo.host_uplink(a)));
        sim.inject_faults(&plan).expect("inject");
        for (i, &s) in sizes.iter().enumerate() {
            sim.send_message(
                conn,
                SimTime::from_micros(i as u64 * spacing_us),
                s,
                0,
                SimDuration::ZERO,
            )
            .expect("send");
        }
        sim.run_to_quiescence();
        if let Err(report) = sim.audit() {
            prop_assert!(false, "audit failed after demotion: {report}");
        }
        let (out, _) = sim.finish();
        prop_assert_eq!(out.flows_fast, 1, "the flow must open fast");
        prop_assert!(
            out.fast_path_demotions >= 1,
            "the fault window must demote the flow off the fast path"
        );
        // Whatever the fast path accepted before the demotion is fully
        // accounted: nothing stays in flight after quiescence.
        prop_assert_eq!(
            out.fast_bytes_offered,
            out.fast_bytes_completed + out.fast_bytes_aborted
        );
    }
}

/// The checked-in `.proptest-regressions` file must stay loadable, and
/// the runner must actually replay its seeds before fresh cases — a
/// saved failure that silently stops being exercised is how regressions
/// come back.
#[test]
fn saved_regression_seeds_load_and_replay() {
    let path = proptest::regressions_path(file!());
    let seeds = proptest::load_regression_seeds(file!());
    assert!(
        !seeds.is_empty(),
        "no seeds parsed from {path}; the committed regressions file went stale"
    );
    let cfg = ProptestConfig::with_cases(3);
    let mut runs = 0usize;
    proptest::run_case_loop_for(&cfg, file!(), |_rng| {
        runs += 1;
        Ok(())
    });
    assert_eq!(
        runs,
        3 + seeds.len(),
        "the runner must replay every saved seed before the fresh cases"
    );
}
