//! Process-level exit-code contracts of the `sonet` binary.
//!
//! These run the real binary (`CARGO_BIN_EXE_sonet`), because exit-code
//! bugs live in `main`'s plumbing — the layer unit tests cannot see. The
//! `SONET_PANIC_EXPERIMENT` hook makes one experiment panic under the
//! batch isolator so the panic → exit-code path is exercised end to end.

use std::path::PathBuf;
use std::process::Command;

fn sonet() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sonet"))
}

fn scratch_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sonet-cli-{label}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A scenario panicking under `supervisor::isolate` must fail the whole
/// batch: nonzero exit, the panic named in the rollup, and the violation
/// flagged in `RUNINFO.json` notes. The other 18 experiments still run.
#[test]
fn all_exits_nonzero_and_flags_runinfo_when_a_scenario_panics() {
    let dir = scratch_dir("all-panic");
    let out = sonet()
        .args(["all", "--fast", "--seed", "7", "--obs"])
        .env("SONET_PANIC_EXPERIMENT", "table4")
        .current_dir(&dir)
        .output()
        .expect("spawn sonet all");
    assert!(
        !out.status.success(),
        "a panicking scenario must exit nonzero; stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("table4") && stderr.contains("panicked"),
        "rollup must name the panicking scenario:\n{stderr}"
    );
    assert!(
        stderr.contains("18/19 scenarios ok"),
        "the other experiments must still render:\n{stderr}"
    );
    let runinfo = std::fs::read_to_string(dir.join("RUNINFO.json")).expect("RUNINFO.json written");
    assert!(
        runinfo.contains("injected test panic"),
        "RUNINFO notes must flag the panic:\n{runinfo}"
    );
    assert!(
        runinfo.contains("\"status\": \"failed: 1 scenarios\""),
        "RUNINFO status must record the failure:\n{runinfo}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `sonet chaos` completes a tiny campaign with exit 0 (SLO violations
/// are results, not process failures) and writes the campaign report.
#[test]
fn chaos_campaign_smoke_exits_zero_and_writes_report() {
    let dir = scratch_dir("chaos-smoke");
    let out_dir = dir.join("campaign");
    let out = sonet()
        .args([
            "chaos",
            "--profiles",
            "rack-outage",
            "--seeds",
            "1",
            "--duration-ms",
            "400",
            "--out",
        ])
        .arg(&out_dir)
        .current_dir(&dir)
        .output()
        .expect("spawn sonet chaos");
    assert!(
        out.status.success(),
        "campaign completion must exit 0; stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("chaos campaign c"),
        "report matrix on stdout:\n{stdout}"
    );
    assert!(
        out_dir.join("campaign-report.json").is_file(),
        "campaign report written"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `--replay` on a missing or malformed file is an infrastructure
/// failure: nonzero exit, no simulation run.
#[test]
fn chaos_replay_rejects_missing_and_malformed_files() {
    let dir = scratch_dir("chaos-replay");
    let missing = sonet()
        .args(["chaos", "--replay"])
        .arg(dir.join("nope.json"))
        .output()
        .expect("spawn sonet chaos --replay");
    assert!(!missing.status.success(), "missing repro file must fail");

    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{\"kind\":\"not-a-repro\"}").expect("write bad repro");
    let malformed = sonet()
        .args(["chaos", "--replay"])
        .arg(&bad)
        .output()
        .expect("spawn sonet chaos --replay");
    assert!(
        !malformed.status.success(),
        "malformed repro file must fail"
    );
    std::fs::remove_dir_all(&dir).ok();
}
