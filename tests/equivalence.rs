//! Byte-identity of the partitioned engine across worker widths and
//! partition granularities.
//!
//! The conservative-lookahead parallel calendar (DESIGN.md §10) promises
//! that neither `--threads N` nor `SONET_PARTITION=dc|cluster` ever
//! changes an output byte — not in the engine counters, not in the tap
//! stream, not in any sampler series or rendered report, with or without
//! an active fault plan. This suite is that promise, stated as tests.
//!
//! CI runs it as a matrix leg with `SONET_THREADS={1,2,8}` crossed with
//! `SONET_PARTITION={dc,cluster}`: when the thread variable is set, each
//! test compares that width against the serial baseline; unset, it
//! sweeps widths 1, 2, and 8 itself. The granularity variable is read by
//! the engine directly, so every test in the file doubles as a
//! granularity leg; `capture_identical_at_every_partition_granularity`
//! additionally pins dc against cluster inside one process.

use sonet_dc::core::reports::Fig15Config;
use sonet_dc::core::supervised::{run_capture, RunStatus, SuperviseOptions};
use sonet_dc::core::supervisor::RunBudget;
use sonet_dc::core::{
    packet_tier_spec, reports, CaptureConfig, FleetData, FleetRunConfig, ScenarioScale,
    StandardCapture,
};
use sonet_dc::netsim::{FaultPlan, NullTap, SimConfig, Simulator};
use sonet_dc::telemetry::{FbflowConfig, FbflowSampler};
use sonet_dc::topology::{HostRole, Topology};
use sonet_dc::util::obs::{self, ObsMode};
use sonet_dc::util::{par, Rng, SimDuration, SimTime};
use sonet_dc::workload::{ServiceProfiles, Workload};
use std::sync::Arc;
use std::time::Duration;

/// Worker widths under test: `SONET_THREADS` (the CI matrix leg) against
/// the serial baseline, or the default 1/2/8 sweep.
fn widths() -> Vec<usize> {
    match std::env::var("SONET_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(w) => vec![1, w],
        None => vec![1, 2, 8],
    }
}

/// Runs `f` with the process-default worker width pinned to `w`. The
/// global is restored afterwards; the whole point of the suite is that
/// a concurrent test seeing the altered value cannot observe it in any
/// output byte.
fn at_width<T>(w: usize, f: impl FnOnce() -> T) -> T {
    par::set_threads(w);
    let out = f();
    par::set_threads(0);
    out
}

/// Runs `f` with the partition granularity pinned to `g`, restoring the
/// environment default afterwards. Like the width global, a concurrent
/// test seeing the altered value is harmless by construction: the
/// decomposition must not be observable in any output byte.
fn at_granularity<T>(g: sonet_dc::netsim::Granularity, f: impl FnOnce() -> T) -> T {
    sonet_dc::netsim::set_granularity_override(Some(g));
    let out = f();
    sonet_dc::netsim::set_granularity_override(None);
    out
}

/// The observability modes swept by the flight-recorder legs.
const OBS_MODES: [ObsMode; 3] = [ObsMode::Off, ObsMode::Summary, ObsMode::Deep];

/// Runs `f` with the process-wide observability mode pinned to `m`,
/// restoring `Off` afterwards. The determinism firewall (DESIGN.md §11)
/// claims the mode — like the worker width — cannot be observed in any
/// output byte, so a concurrent test seeing the altered global is
/// harmless by construction.
fn at_obs<T>(m: ObsMode, f: impl FnOnce() -> T) -> T {
    obs::set_mode(m);
    let out = f();
    obs::set_mode(ObsMode::Off);
    out
}

/// Everything a capture run emits, flattened to one string: engine
/// outputs (link counters, utilization series, buffer windows, every
/// counter), the port-mirror tap stream as seen through each monitored
/// host's trace, mirror accounting, and the rendered reports built on
/// top.
fn capture_fingerprint(cfg: &CaptureConfig) -> String {
    let cap = StandardCapture::run(cfg);
    let mut traces: Vec<(HostRole, String)> = cap
        .traces
        .iter()
        .map(|(&role, trace)| (role, format!("{trace:?}")))
        .collect();
    traces.sort_by_key(|(role, _)| format!("{role:?}"));
    let trace_blob: Vec<String> = traces
        .into_iter()
        .map(|(role, t)| format!("{role:?}={t}"))
        .collect();
    format!(
        "outputs={}|mirror={}/{}/{}/{}|calls={}|traces={}|t2={}|f4={}|f6={}|f12={}|f16={}",
        serde_json::to_string(&cap.outputs).expect("outputs serialize"),
        cap.mirror_offered,
        cap.mirror_overflow,
        cap.mirror_fault_dropped,
        cap.truncated,
        cap.issued_calls,
        trace_blob.join(";"),
        reports::table2(&cap).render(),
        reports::fig4(&cap).render(),
        reports::fig6(&cap).render(),
        reports::fig12(&cap).render(),
        reports::fig16(&cap).render(),
    )
}

#[test]
fn capture_outputs_taps_and_reports_identical_at_every_width() {
    let cfg = CaptureConfig::fast(4242);
    let base = at_width(1, || capture_fingerprint(&cfg));
    for w in widths() {
        assert_eq!(
            base,
            at_width(w, || capture_fingerprint(&cfg)),
            "width {w} changed a capture output byte"
        );
    }
}

#[test]
fn capture_identical_at_every_width_under_active_faults() {
    // A seed-derived fault plan: switch/link outages plus telemetry loss,
    // replayed from the calendar while partitions run in parallel. Fault
    // application, rerouting, and the degraded tap stream must all stay
    // width-independent.
    let topo = Topology::build(packet_tier_spec(ScenarioScale::Tiny)).expect("valid spec");
    let plan = FaultPlan::random(&topo, 97, SimDuration::from_secs(3), 2);
    let cfg = CaptureConfig::fast(97).with_faults(plan);
    let base = at_width(1, || capture_fingerprint(&cfg));
    assert!(
        base.contains("\"faults_applied\":"),
        "fingerprint must include fault accounting"
    );
    for w in widths() {
        assert_eq!(
            base,
            at_width(w, || capture_fingerprint(&cfg)),
            "width {w} changed a faulted capture output byte"
        );
    }
}

#[test]
fn capture_identical_at_every_partition_granularity() {
    // The tentpole claim: refining 4 datacenter partitions into dozens of
    // cluster partitions moves execution, never bytes. A faulted capture
    // (rerouting + telemetry loss in flight) compared dc vs cluster,
    // crossed with the width matrix.
    use sonet_dc::netsim::Granularity;
    let topo = Topology::build(packet_tier_spec(ScenarioScale::Tiny)).expect("valid spec");
    let plan = FaultPlan::random(&topo, 97, SimDuration::from_secs(3), 2);
    let cfg = CaptureConfig::fast(97).with_faults(plan);
    let base = at_granularity(Granularity::Dc, || {
        at_width(1, || capture_fingerprint(&cfg))
    });
    for g in [Granularity::Dc, Granularity::Cluster] {
        for w in widths() {
            let got = at_granularity(g, || at_width(w, || capture_fingerprint(&cfg)));
            assert_eq!(
                base, got,
                "granularity {g:?} at width {w} changed a capture output byte"
            );
        }
    }
}

/// Fleet-wide Fbflow sampling as the engine tap: per-host samplers fire
/// on access links in event order, so an order perturbation anywhere in
/// the partitioned calendar would surface here as a differing sample
/// stream.
fn fbflow_fingerprint(width: usize) -> String {
    let topo = Arc::new(Topology::build(packet_tier_spec(ScenarioScale::Tiny)).expect("spec"));
    let sampler = FbflowSampler::new(&topo, FbflowConfig { sampling_rate: 11 }, Rng::new(2015));
    let mut sim = Simulator::new(Arc::clone(&topo), SimConfig::default(), sampler).expect("sim");
    sim.set_parallel_width(Some(width));
    let mut workload =
        Workload::new(Arc::clone(&topo), ServiceProfiles::default(), 2015).expect("workload");
    for ms in [250u64, 500] {
        let t = SimTime::from_millis(ms);
        workload.generate(&mut sim, t).expect("generate");
        sim.run_until(t);
    }
    let (outputs, sampler) = sim.finish();
    format!(
        "samples={}|dropped={}|outputs={}",
        serde_json::to_string(sampler.samples()).expect("samples serialize"),
        sampler.agent_dropped(),
        serde_json::to_string(&outputs).expect("outputs serialize"),
    )
}

#[test]
fn fbflow_sample_stream_identical_at_every_width() {
    let base = fbflow_fingerprint(1);
    assert!(
        base.len() > 100,
        "the sampler must actually collect something"
    );
    for w in widths() {
        assert_eq!(
            base,
            fbflow_fingerprint(w),
            "width {w} changed the Fbflow sample stream"
        );
    }
}

#[test]
fn buffer_sampler_series_identical_at_every_width() {
    // Fig 15 is the switch-side buffer-occupancy experiment: µs-scale
    // occupancy windows, per-second utilization series, and drop counts,
    // all read from `SimOutputs`. The sampler windows close inside
    // partition event loops, so this pins their series against width.
    let cfg = Fig15Config::fast(31);
    let base = at_width(1, || {
        serde_json::to_string(&reports::fig15(&cfg).expect("fig15")).expect("serialize")
    });
    for w in widths() {
        let got = at_width(w, || {
            serde_json::to_string(&reports::fig15(&cfg).expect("fig15")).expect("serialize")
        });
        assert_eq!(base, got, "width {w} changed the buffer sampler series");
    }
}

#[test]
fn capture_identical_at_every_obs_mode_and_width() {
    // The flight recorder is a write-only side channel: counters,
    // histograms, heartbeats, and (at deep) per-window spans all record
    // while the capture runs, and none of it may move an output byte —
    // at any worker width.
    let cfg = CaptureConfig::fast(4242);
    let base = at_obs(ObsMode::Off, || at_width(1, || capture_fingerprint(&cfg)));
    // The mode sweep at the serial width, then the expensive tier (deep,
    // with per-window spans recording) against the full width matrix.
    for m in [ObsMode::Summary, ObsMode::Deep] {
        assert_eq!(
            base,
            at_obs(m, || at_width(1, || capture_fingerprint(&cfg))),
            "--obs {} changed a capture output byte",
            m.name()
        );
    }
    for w in widths() {
        assert_eq!(
            base,
            at_obs(ObsMode::Deep, || at_width(w, || capture_fingerprint(&cfg))),
            "--obs deep at width {w} changed a capture output byte"
        );
    }
}

#[test]
fn fleet_table_identical_at_every_obs_mode() {
    // The fleet tier's deterministic artifacts — the tagged Scuba table
    // and the reports rendered from it — against the obs-mode sweep.
    let cfg = FleetRunConfig::fast(7);
    let fingerprint = || {
        let data = FleetData::run(&cfg).expect("fleet run");
        format!(
            "rows={}|relaxed={}|dropped={}|t3={}|f5={}",
            data.table.len(),
            data.relaxed_picks,
            data.agent_dropped,
            reports::table3(&data).render(),
            reports::fig5(&data).expect("fig5").render(),
        )
    };
    let base = at_obs(ObsMode::Off, fingerprint);
    for m in OBS_MODES {
        assert_eq!(
            base,
            at_obs(m, fingerprint),
            "--obs {} changed a fleet output byte",
            m.name()
        );
    }
}

#[test]
fn checkpoint_bytes_identical_with_obs_deep() {
    // Deep observability writes a RUNINFO.json next to the checkpoint;
    // the checkpoint itself must stay byte-identical to an unobserved
    // run's — the manifest is a sibling artifact, never an ingredient.
    let ckpt_at = |m: ObsMode| {
        let dir = std::env::temp_dir().join(format!(
            "sonet-equivalence-obs-{}-{}",
            m.name(),
            std::process::id()
        ));
        let cfg = CaptureConfig {
            duration: SimDuration::from_secs(1),
            ..CaptureConfig::fast(88)
        };
        let opts = SuperviseOptions {
            every: SimDuration::from_millis(250),
            budget: RunBudget {
                wall_clock: Some(Duration::ZERO),
                ..RunBudget::unlimited()
            },
            threads: Some(2),
            ..SuperviseOptions::new(&dir)
        };
        let (status, _) = at_obs(m, || run_capture(&cfg, &opts).expect("supervised run"));
        assert!(matches!(status, RunStatus::Stopped(_)));
        let bytes = std::fs::read(opts.capture_checkpoint_path()).expect("checkpoint on disk");
        std::fs::remove_dir_all(&dir).ok();
        bytes
    };
    let base = ckpt_at(ObsMode::Off);
    for m in [ObsMode::Summary, ObsMode::Deep] {
        assert_eq!(
            base,
            ckpt_at(m),
            "--obs {} changed the on-disk checkpoint bytes",
            m.name()
        );
    }
}

#[test]
fn checkpoint_bytes_identical_at_every_width() {
    // The supervised driver's on-disk capture checkpoint (canonical
    // engine state + workload RNGs + mirror) must not encode the width
    // that produced it: stop two runs at their first checkpoint with
    // different widths and compare the files byte for byte.
    let ckpt_at = |w: usize| {
        let dir =
            std::env::temp_dir().join(format!("sonet-equivalence-w{w}-{}", std::process::id()));
        let cfg = CaptureConfig {
            duration: SimDuration::from_secs(1),
            ..CaptureConfig::fast(88)
        };
        let opts = SuperviseOptions {
            every: SimDuration::from_millis(250),
            budget: RunBudget {
                wall_clock: Some(Duration::ZERO),
                ..RunBudget::unlimited()
            },
            threads: Some(w),
            ..SuperviseOptions::new(&dir)
        };
        let (status, cap) = run_capture(&cfg, &opts).expect("supervised run");
        assert!(
            matches!(status, RunStatus::Stopped(_)),
            "zero budget stops at the first checkpoint"
        );
        assert!(cap.is_none());
        let bytes = std::fs::read(opts.capture_checkpoint_path()).expect("checkpoint on disk");
        std::fs::remove_dir_all(&dir).ok();
        bytes
    };
    let base = ckpt_at(1);
    for w in widths() {
        assert_eq!(
            base,
            ckpt_at(w),
            "width {w} changed the on-disk checkpoint bytes"
        );
    }
}

#[test]
fn direct_engine_run_identical_with_audit_at_every_barrier() {
    // The raw engine, no capture machinery: a cross-DC workload with the
    // per-barrier invariant auditor enabled, compared across widths. The
    // auditor re-checks packet conservation and calendar monotonicity at
    // every lookahead barrier, so a merge-order bug aborts loudly instead
    // of surfacing as a silent diff.
    let topo = Arc::new(Topology::build(packet_tier_spec(ScenarioScale::Tiny)).expect("spec"));
    let run = |w: usize| {
        let mut sim =
            Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("sim");
        sim.set_parallel_width(Some(w));
        sim.audit_every_barrier(true);
        let webs = topo.hosts_with_role(HostRole::Web);
        let caches = topo.hosts_with_role(HostRole::CacheLeader);
        for (i, &web) in webs.iter().take(24).enumerate() {
            let c = sim
                .open_connection(
                    SimTime::from_micros(13 * i as u64),
                    web,
                    caches[i % caches.len()],
                    11211,
                )
                .expect("open");
            for m in 0..6u64 {
                sim.send_message(
                    c,
                    SimTime::from_micros(13 * i as u64 + m * 800),
                    2_000 + m * 700,
                    1_000,
                    SimDuration::from_micros(40),
                )
                .expect("send");
            }
        }
        sim.run_to_quiescence();
        let (out, _) = sim.finish();
        serde_json::to_string(&out).expect("serialize")
    };
    let base = run(1);
    for w in widths() {
        assert_eq!(base, run(w), "width {w} changed direct engine outputs");
    }
}
