//! The differential shape-equivalence harness for the hybrid
//! flow/packet fidelity engine (DESIGN.md §13).
//!
//! The hybrid engine's contract is statistical, not per-packet: a
//! `--fidelity=hybrid` run must reproduce the *shapes* the paper's
//! analyses are built on — FCT CDFs, heavy-hitter ranks, locality
//! mixes — while packet-only runs stay byte-identical to the engine
//! before the fast path existed. Every gate here runs at widths 1/2/8
//! (and both partition granularities where the packet suite does),
//! because the fast path executes on the coordinator and must be as
//! width-blind as the packet calendar.

use sonet_dc::analysis::heavy_hitters::{hitters_per_interval, HeavyHitterAgg};
use sonet_dc::analysis::locality::service_matrix_row;
use sonet_dc::core::supervised::{resume_capture, run_capture, RunStatus, SuperviseOptions};
use sonet_dc::core::supervisor::{RunBudget, StopReason};
use sonet_dc::core::{packet_tier_spec, reports, CaptureConfig, ScenarioScale, StandardCapture};
use sonet_dc::netsim::{
    set_granularity_override, FaultKind, FaultPlan, FidelityConfig, FidelityMode, Granularity,
    NullTap, SimConfig, SimOutputs, Simulator,
};
use sonet_dc::topology::{HostRole, Topology};
use sonet_dc::util::{par, EmpiricalCdf, SimDuration, SimTime};
use sonet_dc::workload::{ServiceProfiles, Workload};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Serializes the tests that flip the process-global granularity
/// override (same idiom as tests/chaos.rs).
static GRAN_LOCK: Mutex<()> = Mutex::new(());

/// Worker widths under test (the CI matrix leg or the 1/2/8 sweep).
fn widths() -> Vec<usize> {
    match std::env::var("SONET_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(w) => vec![1, w],
        None => vec![1, 2, 8],
    }
}

fn at_width<T>(w: usize, f: impl FnOnce() -> T) -> T {
    par::set_threads(w);
    let out = f();
    par::set_threads(0);
    out
}

fn at_granularity<T>(g: Granularity, f: impl FnOnce() -> T) -> T {
    set_granularity_override(Some(g));
    let out = f();
    set_granularity_override(None);
    out
}

/// A direct engine run of the standard workload generator with request
/// latency recording on: the FCT source for the K-S gates. No watched
/// links, no samplers — in hybrid mode every sub-heavy flow rides the
/// fast path.
fn fct_run(seed: u64, fidelity: FidelityMode) -> SimOutputs {
    let topo = Arc::new(Topology::build(packet_tier_spec(ScenarioScale::Tiny)).expect("spec"));
    let mut profiles = ServiceProfiles::default();
    profiles.rate_scale = 5.0;
    let mut workload = Workload::new(Arc::clone(&topo), profiles, seed).expect("workload");
    let mut sim = Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("sim");
    if fidelity == FidelityMode::Hybrid {
        sim.set_fidelity(FidelityConfig::hybrid()).expect("hybrid");
    }
    sim.record_latencies(true);
    let end = SimTime::from_millis(2_000);
    let mut t = SimTime::ZERO;
    while t < end {
        t += SimDuration::from_millis(250);
        workload.generate(&mut sim, t).expect("generate");
        sim.run_until(t);
    }
    sim.run_to_quiescence();
    sim.audit().expect("conservation");
    let (out, _) = sim.finish();
    out
}

/// Kolmogorov–Smirnov statistic between two empirical CDFs: the largest
/// vertical gap, evaluated at every sample point of both.
fn ks_statistic(a: &[f64], b: &[f64], cdf_a: &EmpiricalCdf, cdf_b: &EmpiricalCdf) -> f64 {
    let mut worst = 0.0f64;
    for &x in a.iter().chain(b.iter()) {
        let d = (cdf_a.fraction_at(x) - cdf_b.fraction_at(x)).abs();
        if d > worst {
            worst = d;
        }
    }
    worst
}

fn latencies_ms(out: &SimOutputs) -> Vec<f64> {
    out.rpc_latencies
        .iter()
        .map(|d| d.as_nanos() as f64 / 1e6)
        .collect()
}

/// Shape gate thresholds. Calibrated against the tiny packet-tier plant
/// (DESIGN.md §13 records the calibration runs): the analytic FCT model
/// ignores per-packet interleaving, so CDFs drift by a few percent, and
/// the gates bound that drift rather than pretending it is zero.
const FCT_KS_EPSILON: f64 = 0.15;
const FCT_MEAN_REL_ERR: f64 = 0.35;

#[test]
fn fct_cdf_shape_matches_packet_engine_at_every_width() {
    let packet = fct_run(11, FidelityMode::Packet);
    let pl = latencies_ms(&packet);
    assert!(pl.len() > 200, "need a real FCT sample, got {}", pl.len());
    let cdf_p = EmpiricalCdf::new(pl.clone());
    let p_mean = pl.iter().sum::<f64>() / pl.len() as f64;
    for w in widths() {
        let hybrid = at_width(w, || fct_run(11, FidelityMode::Hybrid));
        assert!(
            hybrid.flows_fast > 0,
            "width {w}: nothing took the fast path"
        );
        let hl = latencies_ms(&hybrid);
        let cdf_h = EmpiricalCdf::new(hl.clone());
        let ks = ks_statistic(&pl, &hl, &cdf_p, &cdf_h);
        assert!(
            ks <= FCT_KS_EPSILON,
            "width {w}: FCT K-S statistic {ks:.4} exceeds epsilon {FCT_KS_EPSILON}"
        );
        let h_mean = hl.iter().sum::<f64>() / hl.len() as f64;
        let rel = (h_mean - p_mean).abs() / p_mean;
        assert!(
            rel <= FCT_MEAN_REL_ERR,
            "width {w}: FCT mean drifted {rel:.3} (packet {p_mean:.3} ms, hybrid {h_mean:.3} ms)"
        );
    }
}

/// A capture run flattened to one string, the same shape as the
/// equivalence suite's fingerprint: engine outputs, mirror accounting,
/// per-role traces and the rendered reports built on top.
fn capture_fingerprint(cfg: &CaptureConfig) -> String {
    let cap = StandardCapture::run(cfg);
    let mut traces: Vec<(HostRole, String)> = cap
        .traces
        .iter()
        .map(|(&role, trace)| (role, format!("{trace:?}")))
        .collect();
    traces.sort_by_key(|(role, _)| format!("{role:?}"));
    let trace_blob: Vec<String> = traces
        .into_iter()
        .map(|(role, t)| format!("{role:?}={t}"))
        .collect();
    format!(
        "outputs={}|mirror={}/{}/{}/{}|calls={}|traces={}|t2={}|f4={}",
        serde_json::to_string(&cap.outputs).expect("outputs serialize"),
        cap.mirror_offered,
        cap.mirror_overflow,
        cap.mirror_fault_dropped,
        cap.truncated,
        cap.issued_calls,
        trace_blob.join(";"),
        reports::table2(&cap).render(),
        reports::fig4(&cap).render(),
    )
}

/// Shipping the `fidelity` knob must not perturb a packet-mode run by a
/// single byte: the explicit flag and the default are the same engine.
#[test]
fn explicit_packet_fidelity_flag_is_byte_inert() {
    let default_cfg = CaptureConfig::fast(4242);
    let explicit = CaptureConfig::fast(4242).with_fidelity(FidelityMode::Packet);
    assert_eq!(
        capture_fingerprint(&default_cfg),
        capture_fingerprint(&explicit),
        "an explicit --fidelity=packet must be indistinguishable from the default"
    );
}

/// The fast path runs on the coordinator, so a hybrid run is subject to
/// the same promise as a packet run: worker width and partition
/// granularity must not change one output byte.
#[test]
fn hybrid_capture_identical_at_every_width_and_granularity() {
    let cfg = CaptureConfig::fast(4242).with_fidelity(FidelityMode::Hybrid);
    let _g = GRAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let base = at_granularity(Granularity::Dc, || {
        at_width(1, || capture_fingerprint(&cfg))
    });
    for w in widths().into_iter().skip(1) {
        let probe = at_granularity(Granularity::Dc, || {
            at_width(w, || capture_fingerprint(&cfg))
        });
        assert_eq!(base, probe, "hybrid capture diverged at width {w}");
    }
    let clustered = at_granularity(Granularity::Cluster, || {
        at_width(8, || capture_fingerprint(&cfg))
    });
    assert_eq!(
        base, clustered,
        "hybrid capture diverged under per-cluster calendars"
    );
}

/// Jaccard overlap of two heavy-hitter sets.
fn rank_overlap(
    a: &sonet_dc::analysis::heavy_hitters::IntervalHitters,
    b: &sonet_dc::analysis::heavy_hitters::IntervalHitters,
) -> f64 {
    if a.hitters.is_empty() && b.hitters.is_empty() {
        return 1.0;
    }
    let inter = a.hitters.intersection(&b.hitters).count() as f64;
    let union = a.hitters.union(&b.hitters).count() as f64;
    inter / union
}

/// Shape gates over the capture pipeline: the island planner keeps every
/// mirrored host's traffic on the packet engine, so the heavy-hitter
/// ranks and locality mix the paper's analyses read from those traces
/// must track the packet-only run closely — while the bulk of the plant
/// rides the fast path.
#[test]
fn capture_heavy_hitter_ranks_and_locality_track_packet_engine() {
    const RANK_OVERLAP_MIN: f64 = 0.80;
    const LOCALITY_ABS_ERR: f64 = 0.05;
    let packet = StandardCapture::run(&CaptureConfig::fast(97));
    let hybrid = StandardCapture::run(&CaptureConfig::fast(97).with_fidelity(FidelityMode::Hybrid));
    assert!(
        hybrid.outputs.flows_fast > 0,
        "the hybrid capture must put the non-island bulk on the fast path"
    );
    assert!(
        hybrid.outputs.flows_packet > 0,
        "mirrored islands must stay on the packet engine"
    );
    for role in [HostRole::Web, HostRole::CacheLeader] {
        let tp = &packet.traces[&role];
        let th = &hybrid.traces[&role];
        // Heavy-hitter rank overlap, per observation interval.
        let bin = SimDuration::from_millis(250);
        let hp = hitters_per_interval(tp, &packet.topo, bin, HeavyHitterAgg::Flow);
        let hh = hitters_per_interval(th, &hybrid.topo, bin, HeavyHitterAgg::Flow);
        assert_eq!(
            hp.len(),
            hh.len(),
            "{role:?}: interval counts diverged between engines"
        );
        for (i, (a, b)) in hp.iter().zip(hh.iter()).enumerate() {
            let overlap = rank_overlap(a, b);
            assert!(
                overlap >= RANK_OVERLAP_MIN,
                "{role:?} interval {i}: heavy-hitter rank overlap {overlap:.3} below {RANK_OVERLAP_MIN}"
            );
        }
        // Locality mix: per-peer-role byte fractions within an absolute
        // error band.
        let lp = service_matrix_row(tp, &packet.topo);
        let lh = service_matrix_row(th, &hybrid.topo);
        for (peer, &frac_p) in &lp {
            let frac_h = lh.get(peer).copied().unwrap_or(0.0);
            assert!(
                (frac_p - frac_h).abs() <= LOCALITY_ABS_ERR * 100.0,
                "{role:?}→{peer:?}: locality {frac_h:.2}% drifted from packet {frac_p:.2}%"
            );
        }
    }
}

/// Builds a busy hybrid simulator with a fault window (link down at
/// 1 ms, up at 3 ms) around the checkpoint instant (2 ms), mirroring the
/// packet-mode chaos test: fast flows, demotions in flight, and the
/// analytic calendar all land inside the checkpoint.
fn faulted_hybrid_sim(topo: &Arc<Topology>) -> Simulator<NullTap> {
    let mut sim =
        Simulator::new(Arc::clone(topo), SimConfig::default(), NullTap).expect("valid config");
    sim.set_fidelity(FidelityConfig::hybrid()).expect("hybrid");
    // Open before injecting: the plant is clean, so every flow plans
    // onto the fast path. The plan then lands on two of the pinned
    // routes, demoting those flows mid-life at the fault instant; the
    // third flow stays fast throughout.
    let a = topo.racks()[0].hosts[0];
    let b = topo.racks()[2].hosts[0];
    let c = topo.racks()[1].hosts[0];
    let d = topo.racks()[3].hosts[0];
    let e = topo.racks()[4].hosts[0];
    let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
    let conn2 = sim.open_connection(SimTime::ZERO, c, b, 80).expect("open");
    let conn3 = sim.open_connection(SimTime::ZERO, d, e, 80).expect("open");
    let uplink = topo.host_uplink(a);
    let plan = FaultPlan::new()
        .at(SimTime::from_millis(1), FaultKind::LinkDown(uplink))
        .at(SimTime::from_millis(3), FaultKind::LinkUp(uplink))
        .at(
            SimTime::from_millis(1),
            FaultKind::GrayLink {
                link: topo.host_uplink(c),
                drop_fraction: 0.2,
            },
        );
    sim.inject_faults(&plan).expect("inject");
    for i in 0..12 {
        for (cn, off) in [(conn, 0), (conn2, 150), (conn3, 70)] {
            sim.send_message(
                cn,
                SimTime::from_micros(i * 300 + off),
                8_000,
                1_000,
                SimDuration::from_micros(20),
            )
            .expect("send");
        }
    }
    sim
}

/// The versioned checkpoint carries the whole fast-path section —
/// calendar, virtual queues, fault schedule, counters — so a hybrid run
/// checkpointed inside a fault window resumes byte-identically at any
/// worker width and partition granularity.
#[test]
fn hybrid_checkpoint_inside_fault_window_resumes_identically_across_widths() {
    let topo = Arc::new(Topology::build(packet_tier_spec(ScenarioScale::Tiny)).expect("build"));

    let mut origin = faulted_hybrid_sim(&topo);
    origin.run_until(SimTime::from_millis(2));
    let saved = serde_json::to_string(&origin.checkpoint()).expect("json");

    origin.run_until(SimTime::from_millis(6));
    origin.run_to_quiescence();
    origin
        .audit()
        .expect("conservation across the fault window");
    let reference = serde_json::to_string(&origin.checkpoint()).expect("json");
    let (outputs, _) = origin.finish();
    assert!(outputs.flows_fast > 0, "flows must ride the fast path");
    assert!(
        outputs.fast_path_demotions > 0,
        "the fault window must demote the flow pinned through the dead uplink"
    );

    let _g = GRAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for (granularity, width) in [
        (Granularity::Dc, 1usize),
        (Granularity::Dc, 2),
        (Granularity::Dc, 8),
        (Granularity::Cluster, 1),
        (Granularity::Cluster, 8),
    ] {
        set_granularity_override(Some(granularity));
        let ckpt = serde_json::from_str(&saved).expect("parse");
        let mut resumed = Simulator::restore(Arc::clone(&topo), NullTap, ckpt).expect("restore");
        resumed.set_parallel_width(Some(width));
        resumed.run_until(SimTime::from_millis(6));
        resumed.run_to_quiescence();
        assert_eq!(
            serde_json::to_string(&resumed.checkpoint()).expect("json"),
            reference,
            "{granularity:?} width-{width} hybrid resume diverged from the uninterrupted run"
        );
    }
    set_granularity_override(None);
}

/// The supervised driver's kill-at-a-barrier path, in hybrid mode: a
/// zero wall-clock budget stops the run at its first checkpoint, the
/// resume picks a different worker width AND partition granularity, and
/// the final outputs and reports still match an uninterrupted hybrid run
/// byte for byte.
#[test]
fn killed_hybrid_capture_resumes_at_new_width_and_granularity_identically() {
    let dir = std::env::temp_dir().join(format!("sonet-fidelity-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = CaptureConfig {
        duration: SimDuration::from_secs(1),
        ..CaptureConfig::fast(2015)
    }
    .with_fidelity(FidelityMode::Hybrid);
    let stop_opts = SuperviseOptions {
        every: SimDuration::from_millis(250),
        budget: RunBudget {
            wall_clock: Some(Duration::ZERO),
            ..RunBudget::unlimited()
        },
        ..SuperviseOptions::new(&dir)
    };
    let (status, cap) = run_capture(&cfg, &stop_opts).expect("supervised run");
    assert!(matches!(
        status,
        RunStatus::Stopped(StopReason::WallClock(_))
    ));
    assert!(cap.is_none(), "a stopped run yields no results yet");

    let _g = GRAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let resume_opts = SuperviseOptions {
        every: SimDuration::from_millis(250),
        ..SuperviseOptions::new(&dir)
    };
    set_granularity_override(Some(Granularity::Cluster));
    par::set_threads(8);
    let resumed = resume_capture(&stop_opts.capture_checkpoint_path(), &resume_opts);
    par::set_threads(0);
    set_granularity_override(None);
    let (status, cap) = resumed.expect("resume");
    assert_eq!(status, RunStatus::Completed);
    let resumed = cap.expect("completed run yields a capture");
    assert!(resumed.outputs.flows_fast > 0, "resumed run stayed hybrid");

    let plain = StandardCapture::run(&cfg);
    assert_eq!(
        serde_json::to_string(&resumed.outputs).expect("json"),
        serde_json::to_string(&plain.outputs).expect("json"),
        "hybrid outputs must be byte-identical after kill + resume at a new width"
    );
    assert_eq!(
        serde_json::to_string(&reports::table2(&resumed)).expect("json"),
        serde_json::to_string(&reports::table2(&plain)).expect("json"),
        "downstream reports must be byte-identical after kill + resume"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hybrid_smoke_fast_flows_complete_and_conserve() {
    let out = fct_run(7, FidelityMode::Hybrid);
    assert!(out.flows_fast > 0, "no flow took the fast path: {out:?}");
    assert!(
        out.fast_completed_requests > 0,
        "fast flows must complete requests"
    );
    assert_eq!(
        out.fast_bytes_offered,
        out.fast_bytes_completed + out.fast_bytes_aborted,
        "drained run must conserve fast-path bytes exactly"
    );
    assert!(out.completed_requests > 0);
}
