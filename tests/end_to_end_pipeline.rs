//! Cross-crate integration: topology → workload → packet engine →
//! telemetry → analysis, with consistency checks between independent
//! observation points (the same packets seen by the mirror, by Fbflow,
//! and by the engine's own counters).

use sonet_dc::analysis::HostTrace;
use sonet_dc::netsim::{SimConfig, Simulator};
use sonet_dc::telemetry::{FbflowConfig, FbflowSampler, PortMirror, Tagger, TapPair};
use sonet_dc::topology::{ClusterSpec, HostRole, Topology, TopologySpec};
use sonet_dc::util::{Rng, SimDuration, SimTime};
use sonet_dc::workload::{ServiceProfiles, Workload};
use std::sync::Arc;

fn plant() -> Arc<Topology> {
    Arc::new(
        Topology::build(TopologySpec::single_dc(vec![
            ClusterSpec::frontend(6, 3),
            ClusterSpec::hadoop(3, 3),
            ClusterSpec::cache(2, 3),
            ClusterSpec::database(2, 3),
            ClusterSpec::service(2, 3),
        ]))
        .expect("valid plant"),
    )
}

#[test]
fn mirror_and_counters_agree_exactly() {
    let topo = plant();
    let mut wl = Workload::new(Arc::clone(&topo), ServiceProfiles::default(), 5).expect("workload");
    let web = wl.monitored_host(HostRole::Web).expect("web host");
    let mirror = PortMirror::new(5_000_000);
    let mut sim = Simulator::new(Arc::clone(&topo), SimConfig::default(), mirror).expect("config");
    let up = topo.host_uplink(web);
    let down = topo.host_downlink(web);
    sim.watch_link(up);
    sim.watch_link(down);

    let horizon = SimTime::from_secs(2);
    let mut t = SimTime::ZERO;
    while t < horizon {
        t += SimDuration::from_millis(200);
        wl.generate(&mut sim, t).expect("generate");
        sim.run_until(t);
    }
    let (out, mirror) = sim.finish();

    // Every packet the engine serialized on the mirrored links must be in
    // the capture, and nothing else.
    let expected =
        out.link_counters[up.index()].tx_packets + out.link_counters[down.index()].tx_packets;
    assert_eq!(mirror.records().len() as u64, expected);
    let expected_bytes =
        out.link_counters[up.index()].tx_bytes + out.link_counters[down.index()].tx_bytes;
    let captured_bytes: u64 = mirror
        .records()
        .iter()
        .map(|r| r.pkt.wire_bytes as u64)
        .sum();
    assert_eq!(captured_bytes, expected_bytes);

    // The host trace splits the capture without losing packets.
    let trace = HostTrace::from_mirror(mirror.records(), web);
    assert_eq!(
        trace.outbound().len() + trace.inbound().len(),
        mirror.records().len()
    );
    assert_eq!(
        trace.outbound().len() as u64,
        out.link_counters[up.index()].tx_packets
    );
}

#[test]
fn fbflow_estimates_converge_to_mirror_truth() {
    // Run the same workload with a mirror (ground truth) and a 1:20
    // Fbflow sampler; scaled-up Fbflow byte estimates should land within
    // sampling noise of the truth.
    let topo = plant();
    let mut wl = Workload::new(Arc::clone(&topo), ServiceProfiles::default(), 8).expect("workload");
    let web = wl.monitored_host(HostRole::Web).expect("web host");
    let rate = 20;
    let taps = TapPair::new(
        PortMirror::new(5_000_000),
        FbflowSampler::new(
            &topo,
            FbflowConfig {
                sampling_rate: rate,
            },
            Rng::new(3),
        ),
    );
    let mut sim = Simulator::new(Arc::clone(&topo), SimConfig::default(), taps).expect("config");
    sim.watch_link(topo.host_uplink(web));
    sim.watch_link(topo.host_downlink(web));

    let horizon = SimTime::from_secs(3);
    let mut t = SimTime::ZERO;
    while t < horizon {
        t += SimDuration::from_millis(200);
        wl.generate(&mut sim, t).expect("generate");
        sim.run_until(t);
    }
    let (_, taps) = sim.finish();
    let (mirror, sampler) = taps.into_parts();

    let truth: u64 = mirror
        .records()
        .iter()
        .map(|r| r.pkt.wire_bytes as u64)
        .sum();
    let sampled: u64 = sampler.samples().iter().map(|s| s.bytes).sum();
    let estimate = sampled * rate;
    let rel_err = (estimate as f64 - truth as f64).abs() / truth as f64;
    assert!(
        rel_err < 0.30,
        "Fbflow estimate {estimate} vs truth {truth} (rel err {rel_err:.2})"
    );
}

#[test]
fn tagger_locality_matches_topology_for_every_sample() {
    let topo = plant();
    let mut wl = Workload::new(Arc::clone(&topo), ServiceProfiles::default(), 9).expect("workload");
    let sampler = FbflowSampler::new(&topo, FbflowConfig { sampling_rate: 10 }, Rng::new(4));
    let mut sim = Simulator::new(Arc::clone(&topo), SimConfig::default(), sampler).expect("config");
    FbflowSampler::deploy_fleet_wide(&mut sim, &topo);
    wl.generate(&mut sim, SimTime::from_millis(800))
        .expect("generate");
    sim.run_until(SimTime::from_millis(800));
    let (_, sampler) = sim.finish();
    assert!(!sampler.samples().is_empty());
    let tagger = Tagger::new(&topo);
    for &s in sampler.samples() {
        let tagged = tagger.tag(s);
        assert_eq!(tagged.locality, topo.locality(s.src, s.dst));
        assert_eq!(tagged.src_role, topo.host(s.src).role);
        assert_eq!(tagged.dst_rack, topo.host(s.dst).rack);
    }
}

#[test]
fn workload_traffic_respects_role_semantics() {
    // Web servers never talk to DB or Hadoop (Fig 2's service graph);
    // Hadoop talks only to Hadoop (Table 2).
    let topo = plant();
    let mut wl = Workload::new(Arc::clone(&topo), ServiceProfiles::default(), 2).expect("workload");
    let sampler = FbflowSampler::new(&topo, FbflowConfig { sampling_rate: 1 }, Rng::new(5));
    let mut sim = Simulator::new(Arc::clone(&topo), SimConfig::default(), sampler).expect("config");
    FbflowSampler::deploy_fleet_wide(&mut sim, &topo);
    let horizon = SimTime::from_secs(2);
    let mut t = SimTime::ZERO;
    while t < horizon {
        t += SimDuration::from_millis(200);
        wl.generate(&mut sim, t).expect("generate");
        sim.run_until(t);
    }
    let (_, sampler) = sim.finish();
    for s in sampler.samples() {
        let src_role = topo.host(s.src).role;
        let dst_role = topo.host(s.dst).role;
        if src_role == HostRole::Web {
            assert!(
                !matches!(dst_role, HostRole::Db | HostRole::Hadoop),
                "web host talked to {dst_role}"
            );
        }
        if src_role == HostRole::Hadoop {
            assert!(
                matches!(dst_role, HostRole::Hadoop),
                "hadoop host talked to {dst_role}"
            );
        }
    }
}
