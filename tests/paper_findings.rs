//! The paper's headline findings, asserted as integration tests on fast
//! configurations. These are the qualitative *shapes* the reproduction
//! must preserve (Table 1 of the paper); EXPERIMENTS.md records the
//! quantitative comparisons from the full bench runs.

use sonet_dc::core::{Lab, LabConfig};
use sonet_dc::topology::{HostRole, Locality};

fn lab() -> Lab {
    Lab::new(LabConfig::fast(42))
}

#[test]
fn finding_1_traffic_is_neither_rack_local_nor_all_to_all() {
    let mut lab = lab();
    let f4 = lab.fig4();

    // Web traffic: minimal rack-local, dominated by intra-cluster (§4.2).
    let web = f4.locality_fractions(HostRole::Web).expect("web trace");
    assert!(
        web[0] < 10.0,
        "web rack-local {}% should be minimal",
        web[0]
    );
    assert!(
        web[1] > 50.0,
        "web cluster-local {}% should dominate",
        web[1]
    );

    // Hadoop: heavily rack+cluster local.
    let hadoop = f4
        .locality_fractions(HostRole::Hadoop)
        .expect("hadoop trace");
    assert!(
        hadoop[0] + hadoop[1] > 90.0,
        "hadoop rack+cluster {}% should dominate",
        hadoop[0] + hadoop[1]
    );
    assert!(
        hadoop[0] > 3.0 * web[0],
        "hadoop ({}) must be far more rack-local than web ({})",
        hadoop[0],
        web[0]
    );

    // Cache leaders: spread across the datacenter and beyond (§4.2).
    let leader = f4
        .locality_fractions(HostRole::CacheLeader)
        .expect("leader trace");
    assert!(
        leader[2] + leader[3] > 40.0,
        "leader DC+interDC {}% should be large",
        leader[2] + leader[3]
    );
}

#[test]
fn finding_2_load_balancing_makes_cache_rates_stable() {
    let mut lab = lab();
    let f8 = lab.fig8().expect("both traces exist");
    // Cache is far more stable than Hadoop on every metric.
    assert!(
        f8.cache.fraction_within_2x_of_median > f8.hadoop.fraction_within_2x_of_median,
        "cache {:?} vs hadoop {:?}",
        f8.cache,
        f8.hadoop
    );
    assert!(
        f8.cache.median_mid90_span_decades < f8.hadoop.median_mid90_span_decades,
        "cache span {} should be tighter than hadoop {}",
        f8.cache.median_mid90_span_decades,
        f8.hadoop.median_mid90_span_decades
    );
}

#[test]
fn finding_2b_heavy_hitters_are_transient_at_flow_level() {
    let mut lab = lab();
    let f10 = lab.fig10();
    use sonet_dc::analysis::heavy_hitters::HeavyHitterAgg;
    // Rack aggregation is more persistent than 5-tuple flows (Fig 10's
    // core message) for the cache follower at 100 ms.
    let flow = f10.median_for(HostRole::CacheFollower, HeavyHitterAgg::Flow, 100);
    let rack = f10.median_for(HostRole::CacheFollower, HeavyHitterAgg::Rack, 100);
    if let (Some(flow), Some(rack)) = (flow, rack) {
        assert!(
            rack >= flow,
            "rack persistence {rack}% should be >= flow persistence {flow}%"
        );
    }
}

#[test]
fn finding_3_packets_are_small_and_arrivals_continuous() {
    let mut lab = lab();
    let f12 = lab.fig12();
    // Non-Hadoop medians well under MTU (paper: <200 B).
    for role in [HostRole::Web, HostRole::CacheFollower] {
        let m = f12.median_for(role).expect("trace exists");
        assert!(m < 400.0, "{role} median packet {m} should be small");
    }
    // Hadoop bimodal.
    assert!(
        f12.hadoop_bimodal_fraction > 0.7,
        "hadoop bimodal fraction {}",
        f12.hadoop_bimodal_fraction
    );

    // Busy Hadoop is not on/off at 15/100 ms (Fig 13).
    let f13 = lab.fig13().expect("hadoop trace");
    assert!(
        f13.at_15ms.empty_fraction < 0.3,
        "15-ms empty fraction {} should be small for a busy node",
        f13.at_15ms.empty_fraction
    );
    assert!(
        f13.per_dest_median_empty > f13.at_15ms.empty_fraction,
        "per-destination series should look more on/off than the aggregate"
    );
}

#[test]
fn finding_3b_many_concurrent_destinations() {
    let mut lab = lab();
    let f16 = lab.fig16();
    // Cache followers talk to more racks per 5 ms than web servers talk
    // to (paper: 225-300 vs 10-125; scaled counts keep the ordering).
    let median_of = |role: HostRole| {
        f16.rows
            .iter()
            .find(|(r, scope, _)| *r == role && scope == "All")
            .map(|(_, _, q)| {
                q.split('/')
                    .nth(1)
                    .and_then(|s| s.parse::<f64>().ok())
                    .unwrap_or(0.0)
            })
    };
    let cache = median_of(HostRole::CacheFollower).expect("cache row");
    assert!(
        cache >= 2.0,
        "cache follower should touch several racks per 5 ms: {cache}"
    );
}

#[test]
fn finding_locality_table_shape() {
    let mut lab = lab();
    let t3 = lab.table3();
    let all = &t3.table.all;
    // Neither rack-local-dominated nor all-to-all: intra-cluster is the
    // plurality, and inter-DC exceeds nothing-but-noise levels.
    assert!(
        all.cluster > all.rack,
        "cluster {} > rack {}",
        all.cluster,
        all.rack
    );
    assert!(all.inter_dc > 2.0, "inter-DC {}%", all.inter_dc);
    // Hadoop column: most cluster-local; Cache column: most DC-level.
    let col = |t: sonet_dc::topology::ClusterType| {
        t3.table
            .per_type
            .iter()
            .find(|(ty, _, _)| *ty == t)
            .map(|(_, b, _)| *b)
            .expect("column exists")
    };
    let hadoop = col(sonet_dc::topology::ClusterType::Hadoop);
    assert!(hadoop.cluster > 60.0, "hadoop cluster {}", hadoop.cluster);
    let cache = col(sonet_dc::topology::ClusterType::Cache);
    assert!(
        cache.datacenter > cache.rack,
        "cache DC {} rack {}",
        cache.datacenter,
        cache.rack
    );
}

#[test]
fn finding_flows_long_lived_but_not_heavy() {
    let mut lab = lab();
    // Cache follower per-host flow sizes collapse relative to 5-tuple
    // sizes (Fig 9).
    let f9 = lab.fig9().expect("cache trace");
    assert!(
        f9.host_spread < f9.tuple_spread,
        "host spread {} should be tighter than tuple spread {}",
        f9.host_spread,
        f9.tuple_spread
    );
}

#[test]
fn localities_cover_all_four_classes() {
    let mut lab = lab();
    let fleet = lab.fleet();
    let by_loc = fleet.table.bytes_by(|r| r.locality);
    for l in Locality::ALL {
        assert!(
            by_loc.get(&l).copied().unwrap_or(0) > 0,
            "no bytes at locality {l}"
        );
    }
}
