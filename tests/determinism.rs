//! Reproducibility: a scenario seed fully determines every report — with
//! or without injected faults — and different seeds genuinely differ.

use sonet_dc::core::supervised::{
    resume_capture, resume_fleet, run_capture, run_fleet, RunStatus, SuperviseOptions,
};
use sonet_dc::core::supervisor::{isolate, BatchSummary, RunBudget, StopReason};
use sonet_dc::core::{
    packet_tier_spec, reports, CaptureConfig, FleetData, FleetRunConfig, Lab, LabConfig,
    ScenarioScale, StandardCapture,
};
use sonet_dc::netsim::{FaultKind, FaultPlan};
use sonet_dc::topology::Topology;
use sonet_dc::util::{SimDuration, SimTime};
use std::panic::AssertUnwindSafe;
use std::time::Duration;

fn report_fingerprint(seed: u64) -> String {
    let mut lab = Lab::new(LabConfig::fast(seed));
    let t2 = serde_json::to_string(&lab.table2()).expect("serializes");
    let t4 = serde_json::to_string(&lab.table4()).expect("serializes");
    let f12 = serde_json::to_string(&lab.fig12()).expect("serializes");
    let f14 = serde_json::to_string(&lab.fig14()).expect("serializes");
    let t3 = serde_json::to_string(&lab.table3()).expect("serializes");
    format!("{t2}|{t4}|{f12}|{f14}|{t3}")
}

#[test]
fn same_seed_same_reports() {
    assert_eq!(report_fingerprint(1234), report_fingerprint(1234));
}

#[test]
fn different_seed_different_reports() {
    assert_ne!(report_fingerprint(1), report_fingerprint(2));
}

fn faulted_fingerprint(seed: u64) -> String {
    // A seed-derived fault plan on the same plant the capture builds:
    // outages, a degraded link, and a mirror-loss window, all replayed
    // from the calendar.
    let topo = Topology::build(packet_tier_spec(ScenarioScale::Tiny)).expect("valid spec");
    let plan = FaultPlan::random(&topo, seed, SimDuration::from_secs(3), 2);
    let mut cfg = LabConfig::fast(seed);
    cfg.capture.faults = plan;
    let mut lab = Lab::new(cfg);
    let t2 = serde_json::to_string(&lab.table2()).expect("serializes");
    let f12 = serde_json::to_string(&lab.fig12()).expect("serializes");
    let deg = serde_json::to_string(&lab.degradation()).expect("serializes");
    format!("{t2}|{f12}|{deg}")
}

#[test]
fn same_seed_same_reports_under_faults() {
    assert_eq!(faulted_fingerprint(1234), faulted_fingerprint(1234));
}

#[test]
fn faults_change_the_run_but_not_its_reproducibility() {
    // The faulted run must differ from the healthy baseline of the same
    // seed (the faults really happened) while staying reproducible.
    let topo = Topology::build(packet_tier_spec(ScenarioScale::Tiny)).expect("valid spec");
    let plan = FaultPlan::random(&topo, 77, SimDuration::from_secs(3), 2);
    let mut cfg = LabConfig::fast(77);
    cfg.capture.faults = plan;
    let mut faulted = Lab::new(cfg);
    let mut healthy = Lab::new(LabConfig::fast(77));
    let deg = faulted.degradation();
    assert!(deg.faults_applied > 0);
    assert!(healthy.degradation().is_clean());
}

#[test]
fn acceptance_scenario_switch_death_plus_total_mirror_loss() {
    // ISSUE acceptance: a mid-run switch failure with 100% mirror capture
    // loss completes without panicking, reroutes flows, and counts every
    // lost telemetry packet.
    let topo = Topology::build(packet_tier_spec(ScenarioScale::Tiny)).expect("valid spec");
    let csw = topo
        .switches()
        .iter()
        .position(|s| s.kind == sonet_dc::topology::SwitchKind::Csw)
        .map(|i| sonet_dc::topology::SwitchId(i as u32))
        .expect("tiny plant has CSWs");
    let plan = FaultPlan::new()
        .at(SimTime::from_millis(800), FaultKind::SwitchDown(csw))
        .at(
            SimTime::from_millis(800),
            FaultKind::MirrorLoss { fraction: 1.0 },
        );
    let mut cfg = LabConfig::fast(5);
    cfg.capture.faults = plan;
    let mut lab = Lab::new(cfg);
    let deg = lab.degradation();
    assert_eq!(deg.faults_applied, 1);
    assert!(deg.reroutes > 0, "flows re-hashed around the dead post");
    assert!(
        deg.fault_dropped_packets > 0,
        "dead-link losses are counted"
    );
    assert!(deg.mirror_fault_dropped > 0, "telemetry losses are counted");
    assert!(deg.telemetry_loss_fraction > 0.0);
    assert!(deg.render().contains("telemetry loss"));
    // The analysis pipeline still runs on the degraded capture.
    let t2 = lab.table2();
    assert!(!t2.rows.is_empty());
}

#[test]
fn killed_and_resumed_capture_reports_are_byte_identical() {
    // The ISSUE acceptance criterion, end to end through the public API:
    // kill a supervised run mid-capture (zero wall-clock budget stops it
    // at the first checkpoint), resume from the on-disk checkpoint, and
    // the final reports must match an uninterrupted run byte for byte.
    let dir = std::env::temp_dir().join(format!("sonet-determinism-{}", std::process::id()));
    let cfg = CaptureConfig {
        duration: SimDuration::from_secs(1),
        ..CaptureConfig::fast(2015)
    };
    let stop_opts = SuperviseOptions {
        every: SimDuration::from_millis(250),
        budget: RunBudget {
            wall_clock: Some(Duration::ZERO),
            ..RunBudget::unlimited()
        },
        ..SuperviseOptions::new(&dir)
    };
    let (status, cap) = run_capture(&cfg, &stop_opts).expect("supervised run");
    assert!(matches!(
        status,
        RunStatus::Stopped(StopReason::WallClock(_))
    ));
    assert!(cap.is_none(), "a stopped run yields no results yet");

    let resume_opts = SuperviseOptions {
        every: SimDuration::from_millis(250),
        ..SuperviseOptions::new(&dir)
    };
    let (status, cap) =
        resume_capture(&stop_opts.capture_checkpoint_path(), &resume_opts).expect("resume");
    assert_eq!(status, RunStatus::Completed);
    let resumed = cap.expect("completed run yields a capture");
    let plain = StandardCapture::run(&cfg);
    assert_eq!(
        serde_json::to_string(&resumed.outputs).expect("json"),
        serde_json::to_string(&plain.outputs).expect("json"),
        "engine outputs must be byte-identical after kill + resume"
    );
    assert_eq!(
        serde_json::to_string(&reports::table2(&resumed)).expect("json"),
        serde_json::to_string(&reports::table2(&plain)).expect("json"),
        "downstream reports must be byte-identical after kill + resume"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Every report whose pipeline has a parallel stage (fleet generation,
/// tagging, Table 3 columns, flow CDF rows, heavy-hitter windows, trace
/// building), serialized and rendered, at one worker-pool width.
fn threaded_fingerprint(threads: usize) -> String {
    // `set_threads` widens the analysis stages that use the process
    // default; `cfg.threads` widens fleet generation and tagging. Other
    // tests may race on the global, but that is the claim under test:
    // the pool width never reaches any output byte.
    sonet_dc::util::par::set_threads(threads);
    let mut cfg = LabConfig::fast(2026);
    cfg.threads = Some(threads);
    let mut lab = Lab::new(cfg);
    let t3 = lab.table3();
    let f5 = lab.fig5();
    let t4 = lab.table4();
    let f6 = lab.fig6();
    let f7 = lab.fig7();
    let out = format!(
        "{}|{}|{}|{}|{}|{}|{}|{}",
        serde_json::to_string(&t3).expect("serializes"),
        t3.render(),
        serde_json::to_string(&f5).expect("serializes"),
        f5.render(),
        serde_json::to_string(&t4).expect("serializes"),
        t4.render(),
        f6.render(),
        f7.render(),
    );
    sonet_dc::util::par::set_threads(0);
    out
}

#[test]
fn fleet_output_and_reports_byte_identical_across_thread_counts() {
    // The tentpole guarantee: `--threads 1`, `2`, and `8` produce the
    // same bytes everywhere — samples, tagged table, rendered reports.
    let base = threaded_fingerprint(1);
    assert_eq!(base, threaded_fingerprint(2), "threads=2 diverged");
    assert_eq!(base, threaded_fingerprint(8), "threads=8 diverged");
}

/// Serialized view of everything a fleet run produces.
fn fleet_data_fingerprint(data: &FleetData) -> String {
    let t3 = reports::table3(data);
    let f5 = reports::fig5(data).expect("preset plants have all cluster types");
    format!(
        "rows={} relaxed={} dropped={}|{}|{}",
        data.table.len(),
        data.relaxed_picks,
        data.agent_dropped,
        serde_json::to_string(&t3).expect("serializes"),
        serde_json::to_string(&f5).expect("serializes"),
    )
}

#[test]
fn killed_fleet_run_resumed_at_a_different_thread_count_is_byte_identical() {
    // Kill a supervised fleet run at its first checkpoint (zero
    // wall-clock budget) on 1 thread, resume it on 8, and compare with
    // an uninterrupted 2-thread run: all three must agree byte for byte.
    let dir = std::env::temp_dir().join(format!("sonet-fleet-threads-{}", std::process::id()));
    let cfg = FleetRunConfig::fast(2027);
    let stop_opts = SuperviseOptions {
        hosts_per_chunk: 16,
        budget: RunBudget {
            wall_clock: Some(Duration::ZERO),
            ..RunBudget::unlimited()
        },
        threads: Some(1),
        ..SuperviseOptions::new(&dir)
    };
    let (status, data) = run_fleet(&cfg, &stop_opts).expect("supervised run");
    assert!(matches!(
        status,
        RunStatus::Stopped(StopReason::WallClock(_))
    ));
    assert!(data.is_none(), "a stopped run yields no results yet");

    let resume_opts = SuperviseOptions {
        threads: Some(8),
        ..SuperviseOptions::new(&dir)
    };
    let (status, data) =
        resume_fleet(&stop_opts.fleet_checkpoint_path(), &resume_opts).expect("resume");
    assert_eq!(status, RunStatus::Completed);
    let resumed = data.expect("completed run yields fleet data");
    let plain = FleetData::run_with(&cfg, Some(2)).expect("valid config");
    assert_eq!(
        fleet_data_fingerprint(&resumed),
        fleet_data_fingerprint(&plain),
        "kill + resume at a different thread count must not change a byte"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_panicking_scenario_leaves_the_rest_of_the_batch_intact() {
    // Panic isolation: the middle scenario blows up; the batch still
    // finishes, keeps both healthy results, and reports partial success.
    let mut batch = BatchSummary::new();
    for name in ["first", "boom", "last"] {
        let result = isolate(AssertUnwindSafe(|| {
            if name == "boom" {
                panic!("deliberate scenario failure");
            }
            format!("{name} rendered")
        }));
        batch.push(name, result);
    }
    assert!(!batch.all_ok());
    assert_eq!(batch.failures(), 1);
    assert_eq!(
        batch.outcomes[0].result.as_deref(),
        Ok("first rendered"),
        "scenario before the panic keeps its result"
    );
    assert_eq!(
        batch.outcomes[2].result.as_deref(),
        Ok("last rendered"),
        "scenario after the panic still runs"
    );
    let rendered = batch.render();
    assert!(rendered.contains("FAIL boom"));
    assert!(rendered.contains("deliberate scenario failure"));
    assert!(rendered.contains("2/3 scenarios ok"));
}

#[test]
fn reports_serialize_to_json() {
    let mut lab = Lab::new(LabConfig::fast(3));
    // Every report type round-trips through serde_json without panicking.
    let json = serde_json::to_value(lab.table2()).expect("t2");
    assert!(json.is_object());
    let json = serde_json::to_value(lab.fig5()).expect("f5");
    assert!(json.is_object());
    let json = serde_json::to_value(lab.fig15()).expect("f15");
    assert!(json.is_object());
    let json = serde_json::to_value(lab.fig16()).expect("f16");
    assert!(json.is_object());
}
