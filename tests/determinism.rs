//! Reproducibility: a scenario seed fully determines every report, and
//! different seeds genuinely differ.

use sonet_dc::core::{Lab, LabConfig};

fn report_fingerprint(seed: u64) -> String {
    let mut lab = Lab::new(LabConfig::fast(seed));
    let t2 = serde_json::to_string(&lab.table2()).expect("serializes");
    let t4 = serde_json::to_string(&lab.table4()).expect("serializes");
    let f12 = serde_json::to_string(&lab.fig12()).expect("serializes");
    let f14 = serde_json::to_string(&lab.fig14()).expect("serializes");
    let t3 = serde_json::to_string(&lab.table3()).expect("serializes");
    format!("{t2}|{t4}|{f12}|{f14}|{t3}")
}

#[test]
fn same_seed_same_reports() {
    assert_eq!(report_fingerprint(1234), report_fingerprint(1234));
}

#[test]
fn different_seed_different_reports() {
    assert_ne!(report_fingerprint(1), report_fingerprint(2));
}

#[test]
fn reports_serialize_to_json() {
    let mut lab = Lab::new(LabConfig::fast(3));
    // Every report type round-trips through serde_json without panicking.
    let json = serde_json::to_value(lab.table2()).expect("t2");
    assert!(json.is_object());
    let json = serde_json::to_value(lab.fig5()).expect("f5");
    assert!(json.is_object());
    let json = serde_json::to_value(lab.fig15()).expect("f15");
    assert!(json.is_object());
    let json = serde_json::to_value(lab.fig16()).expect("f16");
    assert!(json.is_object());
}
