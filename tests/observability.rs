//! The flight recorder's artifacts, end to end: a supervised run with
//! observability on must emit a `RUNINFO.json` that validates against the
//! checked-in schema, and a deep run must export a well-formed Chrome
//! `trace_event` file.
//!
//! The validator below implements the JSON-Schema keyword subset the
//! schema uses — `type`, `required`, `properties`, `items`, `enum` — over
//! the vendored `serde_json` value model, so the test needs no external
//! schema crate. `schemas/runinfo.schema.json` stays the single source of
//! truth shared with the CI obs smoke job.

use sonet_dc::core::supervised::{run_capture, RunStatus, SuperviseOptions};
use sonet_dc::core::CaptureConfig;
use sonet_dc::util::obs::{self, ObsMode};
use sonet_dc::util::SimDuration;
use std::path::PathBuf;

use serde::Content;
use serde_json::Value;

/// Validates `value` against the schema keyword subset, appending one
/// message per violation to `errors`. `path` locates the value in the
/// document (e.g. `$.metrics.entries[3]`).
fn validate(schema: &Value, value: &Value, path: &str, errors: &mut Vec<String>) {
    if let Some(ty) = schema.get("type") {
        let allowed: Vec<String> = match &ty.0 {
            Content::Str(s) => vec![s.clone()],
            Content::Seq(items) => items
                .iter()
                .filter_map(|c| c.as_str())
                .map(str::to_owned)
                .collect(),
            _ => Vec::new(),
        };
        if !allowed.iter().any(|t| type_matches(t, &value.0)) {
            errors.push(format!(
                "{path}: expected type {allowed:?}, got {}",
                type_name(&value.0)
            ));
            return;
        }
    }
    if let Some(en) = schema.get("enum") {
        if let Content::Seq(candidates) = &en.0 {
            let rendered = Value(value.0.clone()).to_string();
            if !candidates
                .iter()
                .any(|c| Value(c.clone()).to_string() == rendered)
            {
                errors.push(format!("{path}: {rendered} not in enum"));
            }
        }
    }
    // Object keywords apply only when the value is an object: a field
    // typed `["object", "null"]` with `required` inside is legal as null.
    if value.is_object() {
        if let Some(req) = schema.get("required") {
            if let Content::Seq(keys) = &req.0 {
                for key in keys.iter().filter_map(Content::as_str) {
                    if value.get(key).is_none() {
                        errors.push(format!("{path}: missing required field '{key}'"));
                    }
                }
            }
        }
        if let Some(props) = schema.get("properties") {
            if let Content::Map(entries) = &props.0 {
                for (k, sub) in entries {
                    if let Some(key) = k.as_str() {
                        if let Some(field) = value.get(key) {
                            validate(
                                &Value(sub.clone()),
                                &field,
                                &format!("{path}.{key}"),
                                errors,
                            );
                        }
                    }
                }
            }
        }
    }
    if let Content::Seq(items) = &value.0 {
        if let Some(item_schema) = schema.get("items") {
            for (i, item) in items.iter().enumerate() {
                validate(
                    &item_schema,
                    &Value(item.clone()),
                    &format!("{path}[{i}]"),
                    errors,
                );
            }
        }
    }
}

fn type_matches(name: &str, c: &Content) -> bool {
    match name {
        "object" => matches!(c, Content::Map(_)),
        "array" => matches!(c, Content::Seq(_)),
        "string" => matches!(c, Content::Str(_)),
        "integer" => matches!(c, Content::U64(_) | Content::I64(_)),
        "number" => matches!(c, Content::U64(_) | Content::I64(_) | Content::F64(_)),
        "boolean" => matches!(c, Content::Bool(_)),
        "null" => matches!(c, Content::Null),
        _ => false,
    }
}

fn type_name(c: &Content) -> &'static str {
    match c {
        Content::Null => "null",
        Content::Bool(_) => "boolean",
        Content::U64(_) | Content::I64(_) => "integer",
        Content::F64(_) => "number",
        Content::Str(_) => "string",
        Content::Seq(_) => "array",
        Content::Map(_) => "object",
    }
}

fn load_schema() -> Value {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("schemas/runinfo.schema.json");
    let body = std::fs::read_to_string(&path).expect("schema file");
    serde_json::from_str(&body).expect("schema parses")
}

fn scratch_dir(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "sonet-observability-{label}-{}",
        std::process::id()
    ))
}

/// One deep supervised run; asserts on every flight-recorder artifact it
/// emits. A single test (rather than one per artifact) because the obs
/// mode is process-global and parallel test threads would race on it.
#[test]
fn deep_supervised_run_emits_valid_artifacts() {
    obs::set_mode(ObsMode::Deep);
    let dir = scratch_dir("capture");
    let cfg = CaptureConfig {
        duration: SimDuration::from_secs(1),
        ..CaptureConfig::fast(19)
    };
    let opts = SuperviseOptions::new(&dir);
    let (status, cap) = run_capture(&cfg, &opts).expect("supervised run");
    obs::set_mode(ObsMode::Off);
    assert!(matches!(status, RunStatus::Completed));
    assert!(cap.is_some());

    // The manifest exists, parses, and validates against the pinned schema.
    let body = std::fs::read_to_string(opts.runinfo_path()).expect("RUNINFO.json written");
    let doc: Value = serde_json::from_str(&body).expect("RUNINFO.json parses");
    let mut errors = Vec::new();
    validate(&load_schema(), &doc, "$", &mut errors);
    assert!(errors.is_empty(), "schema violations: {errors:#?}");
    assert_eq!(
        doc.get("status").expect("status").0.as_str(),
        Some("completed")
    );
    assert_eq!(
        doc.get("command").expect("command").0.as_str(),
        Some("capture")
    );

    // The engine actually recorded into the registry during the run.
    let metrics = doc.get("metrics").expect("metrics");
    let entries = match &metrics.get("entries").expect("entries").0 {
        Content::Seq(items) => items.clone(),
        other => panic!("entries must be an array, got {other:?}"),
    };
    let events = entries
        .iter()
        .find_map(|e| {
            let v = Value(e.clone());
            (v.get("name")?.0.as_str()? == "engine.events").then(|| v.get("value"))?
        })
        .expect("engine.events metric present");
    assert!(
        matches!(events.0, Content::U64(n) if n > 0),
        "engine.events must be a positive count, got {:?}",
        events.0
    );

    // The stealing pool's metrics land in the manifest: the counters are
    // registered up front (present even when a serial run never steals),
    // and the effective-lookahead histogram gets one observation per
    // scheduled window.
    let find = |name: &str| {
        entries.iter().find_map(|e| {
            let v = Value(e.clone());
            (v.get("name")?.0.as_str()? == name).then_some(v)
        })
    };
    for name in [
        "engine.steals",
        "engine.worker_idle_ns",
        "engine.part0.idle_ns",
    ] {
        let m = find(name).unwrap_or_else(|| panic!("{name} metric missing from RUNINFO"));
        assert_eq!(
            m.get("kind").expect("kind").0.as_str(),
            Some("counter"),
            "{name} must be a counter"
        );
    }
    let look = find("engine.effective_lookahead_ns").expect("effective-lookahead histogram");
    assert_eq!(
        look.get("kind").expect("kind").0.as_str(),
        Some("histogram")
    );
    let hist = look.get("histogram").expect("histogram payload");
    assert!(
        matches!(hist.get("count").expect("count").0, Content::U64(n) if n > 0),
        "every scheduled window must observe its effective lookahead"
    );

    // The deep run's span buffer exports as a well-formed Chrome trace.
    let trace_path = dir.join("trace.json");
    let n = obs::trace::export_chrome(&trace_path).expect("trace export");
    assert!(n > 0, "a deep run records spans");
    let trace: Value =
        serde_json::from_str(&std::fs::read_to_string(&trace_path).expect("trace file"))
            .expect("trace parses");
    let events = match &trace.get("traceEvents").expect("traceEvents").0 {
        Content::Seq(items) => items.clone(),
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert_eq!(events.len(), n);
    for e in &events {
        let v = Value(e.clone());
        assert_eq!(v.get("ph").expect("ph").0.as_str(), Some("X"));
        for field in ["name", "cat", "ts", "dur", "pid", "tid"] {
            assert!(v.get(field).is_some(), "trace event missing '{field}'");
        }
    }
    assert!(
        events.iter().any(|e| {
            Value(e.clone())
                .get("name")
                .and_then(|n| n.0.as_str().map(str::to_owned))
                == Some("engine.window".to_owned())
        }),
        "deep mode records per-window engine spans"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn validator_rejects_malformed_manifests() {
    let schema = load_schema();
    // Missing nearly every required field, and a wrong-typed `schema`.
    let doc: Value = serde_json::from_str(r#"{"schema": "one", "command": 7}"#).expect("parses");
    let mut errors = Vec::new();
    validate(&schema, &doc, "$", &mut errors);
    assert!(
        errors
            .iter()
            .any(|e| e.contains("missing required field 'seed'")),
        "missing fields must be reported: {errors:?}"
    );
    assert!(
        errors.iter().any(|e| e.contains("$.schema")),
        "type mismatches must be reported: {errors:?}"
    );
    assert!(
        errors.iter().any(|e| e.contains("$.command")),
        "wrong-typed command must be reported: {errors:?}"
    );

    // A bad obs_mode trips the enum keyword.
    let doc: Value = serde_json::from_str(r#"{"obs_mode": "loud"}"#).expect("parses");
    let mut errors = Vec::new();
    validate(&schema, &doc, "$", &mut errors);
    assert!(
        errors
            .iter()
            .any(|e| e.contains("$.obs_mode") && e.contains("not in enum")),
        "enum violations must be reported: {errors:?}"
    );
}
