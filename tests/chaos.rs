//! Chaos-campaign integration tests: determinism of the campaign report
//! across thread widths AND partition granularities, resume of a
//! campaign killed at a manifest barrier on a different width and
//! granularity, the shrinker on the known-bad plan, standalone repro
//! replay, checkpoint/resume inside an active fault window, and
//! abort/reopen accounting under flapping links.

use sonet_core::chaos::campaign::{execute_run, execute_twin};
use sonet_core::chaos::profile::known_bad_plan;
use sonet_core::chaos::shrink::shrink_plan;
use sonet_core::chaos::slo::{evaluate, SloSpec};
use sonet_core::chaos::{
    plan_hash, replay_repro, run_campaign, CampaignConfig, ChaosProfile, ExecConfig, ReproFile,
};
use sonet_core::scenario::{packet_tier_spec, ScenarioScale};
use sonet_netsim::{
    set_granularity_override, FaultKind, FaultPlan, Granularity, NullTap, SimConfig, Simulator,
};
use sonet_topology::Topology;
use sonet_util::{par, SimDuration, SimTime};
use sonet_workload::{ServiceProfiles, Workload};
use std::sync::{Arc, Mutex};

/// Serializes the tests that flip the process-global partition
/// granularity override, so each leg really runs at the granularity its
/// label claims (byte identity would hold either way — labels matter for
/// diagnosing a failure).
static GRAN_LOCK: Mutex<()> = Mutex::new(());

fn tiny_exec(seed: u64) -> ExecConfig {
    ExecConfig {
        scale: ScenarioScale::Tiny,
        seed,
        duration: SimDuration::from_secs(2),
        rate_scale: 5.0,
        max_events: None,
        fidelity: Default::default(),
    }
}

#[test]
fn known_bad_plan_violates_and_shrinks_to_one_event() {
    let exec = tiny_exec(1);
    let topo = Arc::new(Topology::build(packet_tier_spec(exec.scale)).expect("build"));
    let plan = known_bad_plan(&topo, exec.duration);
    assert!(plan.len() >= 4, "needs decoys worth stripping");

    let twin = execute_twin(&exec).expect("twin");
    let metrics = execute_run(&exec, &plan).expect("run");
    let slo = SloSpec::default();
    let report = evaluate(&slo, &metrics, &twin);
    assert!(
        !report.pass(),
        "known-bad plan must violate an SLO; metrics: {metrics:?}"
    );
    let target = report.violated()[0].to_string();

    let outcome = shrink_plan(&exec, &twin, &slo, &plan, &target, 64);
    assert!(
        outcome.events_after <= 3,
        "shrunk to {} events (from {}), want ≤ 3",
        outcome.events_after,
        outcome.events_before
    );
    // The shrunk plan still reproduces the violation standalone.
    let m2 = execute_run(&exec, &outcome.plan).expect("shrunk run");
    assert!(
        evaluate(&slo, &m2, &twin)
            .violated()
            .contains(&target.as_str()),
        "shrunk plan must still violate {target}"
    );
}

#[test]
fn campaign_report_is_byte_identical_across_widths_and_granularities() {
    let _g = GRAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let profiles = ChaosProfile::select("rack-outage,gray-core").expect("profiles");
    let mut cfg = CampaignConfig::new(profiles, 2, 42);
    cfg.max_shrinks = 1;
    let legs = [
        (Granularity::Dc, 1usize),
        (Granularity::Dc, 2),
        (Granularity::Dc, 8),
        (Granularity::Cluster, 8),
    ];
    let mut reports = Vec::new();
    for (granularity, width) in legs {
        set_granularity_override(Some(granularity));
        par::set_threads(width);
        let report = run_campaign(&cfg, None, false).expect("campaign");
        reports.push(serde_json::to_string(&report).expect("json"));
    }
    par::set_threads(0);
    set_granularity_override(None);
    for (i, (granularity, width)) in legs.iter().enumerate().skip(1) {
        assert_eq!(
            reports[0], reports[i],
            "{granularity:?} × width {width} changed the report"
        );
    }
}

#[test]
fn campaign_killed_at_a_barrier_resumes_at_new_width_and_granularity() {
    let _g = GRAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = std::env::temp_dir().join(format!("sonet-chaos-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Nine runs: one more than the 8-run manifest chunk, so a kill after
    // the first flush leaves genuinely unfinished work behind.
    let mut cfg = CampaignConfig::new(ChaosProfile::select("rack-outage").expect("p"), 9, 13);
    cfg.max_shrinks = 0;

    // The uninterrupted reference: serial, per-datacenter calendars.
    set_granularity_override(Some(Granularity::Dc));
    par::set_threads(1);
    run_campaign(&cfg, Some(&dir), false).expect("campaign");
    let reference = std::fs::read(dir.join("campaign-report.json")).expect("report");

    // "Kill" the campaign at the first chunk barrier: rewind the manifest
    // to the eight runs the first flush recorded and drop the final
    // report — exactly the on-disk state a SIGKILL between the first and
    // second chunk leaves (manifest writes are atomic renames).
    let manifest_path = dir.join("campaign-manifest.json");
    let mut manifest: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&manifest_path).expect("manifest"))
            .expect("parse manifest");
    let recorded = {
        let serde::Content::Map(entries) = &mut manifest.0 else {
            panic!("manifest must be an object");
        };
        let completed = entries
            .iter_mut()
            .find(|(k, _)| k.as_str() == Some("completed"))
            .map(|(_, v)| v)
            .expect("manifest has a completed list");
        let serde::Content::Seq(runs) = completed else {
            panic!("completed must be an array");
        };
        let recorded = runs.len();
        runs.truncate(8);
        recorded
    };
    assert_eq!(recorded, 9, "nine-run campaign must record 9 runs");
    std::fs::write(
        &manifest_path,
        serde_json::to_string(&manifest).expect("json"),
    )
    .expect("write manifest");
    std::fs::remove_file(dir.join("campaign-report.json")).expect("drop report");

    // Resume on a different worker width AND partition granularity: the
    // ninth run re-executes under per-cluster calendars at width 8, yet
    // the report must come back byte-for-byte.
    set_granularity_override(Some(Granularity::Cluster));
    par::set_threads(8);
    run_campaign(&cfg, Some(&dir), true).expect("resume");
    par::set_threads(0);
    set_granularity_override(None);
    assert_eq!(
        std::fs::read(dir.join("campaign-report.json")).expect("resumed report"),
        reference,
        "resumed campaign-report.json must be byte-identical to the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn campaign_writes_report_manifest_and_replayable_repro() {
    let dir = std::env::temp_dir().join(format!("sonet-chaos-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = CampaignConfig::new(ChaosProfile::select("brownout").expect("p"), 1, 7);
    cfg.inject_known_bad = true;
    cfg.max_shrinks = 1;
    let report = run_campaign(&cfg, Some(&dir), false).expect("campaign");
    assert!(dir.join("campaign-report.json").exists());
    assert!(dir.join("campaign-manifest.json").exists());
    assert!(
        report.violated >= 1,
        "the injected known-bad run must violate: {}",
        report.render()
    );
    assert_eq!(report.shrinks.len(), 1, "one shrink expected");
    let shrink = &report.shrinks[0];
    assert!(!shrink.repro_file.is_empty());
    let raw = std::fs::read_to_string(dir.join(&shrink.repro_file)).expect("repro file");
    let repro: ReproFile = serde_json::from_str(&raw).expect("parse repro");
    assert_eq!(repro.kind, "chaos-repro");
    assert_eq!(repro.plan_hash, plan_hash(&repro.plan));
    assert!(
        replay_repro(&repro).expect("replay"),
        "repro file must reproduce its violation standalone"
    );

    // Resuming the finished campaign reuses the manifest and reproduces
    // the identical report.
    let again = run_campaign(&cfg, Some(&dir), true).expect("resume");
    assert_eq!(
        serde_json::to_string(&again).expect("json"),
        serde_json::to_string(&report).expect("json"),
        "resume must reproduce the identical report"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Builds a busy simulator with a fault window (link down at 1 ms, up at
/// 3 ms) around the checkpoint instant (2 ms).
fn faulted_sim(topo: &Arc<Topology>, width: Option<usize>) -> Simulator<NullTap> {
    let mut sim =
        Simulator::new(Arc::clone(topo), SimConfig::default(), NullTap).expect("valid config");
    if let Some(w) = width {
        sim.set_parallel_width(Some(w));
    }
    let uplink = topo.host_uplink(topo.racks()[0].hosts[0]);
    let plan = FaultPlan::new()
        .at(SimTime::from_millis(1), FaultKind::LinkDown(uplink))
        .at(SimTime::from_millis(3), FaultKind::LinkUp(uplink))
        .at(
            SimTime::from_millis(1),
            FaultKind::GrayLink {
                link: topo.host_uplink(topo.racks()[1].hosts[0]),
                drop_fraction: 0.2,
            },
        );
    sim.inject_faults(&plan).expect("inject");
    let a = topo.racks()[0].hosts[0];
    let b = topo.racks()[2].hosts[0];
    let c = topo.racks()[1].hosts[0];
    let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
    let conn2 = sim.open_connection(SimTime::ZERO, c, b, 80).expect("open");
    for i in 0..12 {
        sim.send_message(
            conn,
            SimTime::from_micros(i * 300),
            8_000,
            1_000,
            SimDuration::from_micros(20),
        )
        .expect("send");
        sim.send_message(
            conn2,
            SimTime::from_micros(i * 300 + 150),
            8_000,
            1_000,
            SimDuration::from_micros(20),
        )
        .expect("send");
    }
    sim
}

#[test]
fn checkpoint_inside_fault_window_resumes_identically_across_widths() {
    let topo = Arc::new(Topology::build(packet_tier_spec(ScenarioScale::Tiny)).expect("build"));

    // Save at 2 ms: the link is DOWN (down at 1 ms, up scheduled at 3 ms)
    // and a gray link is active — the checkpoint lands inside both fault
    // windows.
    let mut origin = faulted_sim(&topo, None);
    origin.run_until(SimTime::from_millis(2));
    let saved = serde_json::to_string(&origin.checkpoint()).expect("json");

    // The uninterrupted run is the reference.
    origin.run_until(SimTime::from_millis(6));
    let reference = serde_json::to_string(&origin.checkpoint()).expect("json");

    // The checkpoint canonicalizes to the serial form, so a resume may
    // pick any worker width AND any partition granularity — including
    // ones the saving run never used.
    let _g = GRAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for (granularity, width) in [
        (Granularity::Dc, 1usize),
        (Granularity::Dc, 2),
        (Granularity::Dc, 8),
        (Granularity::Cluster, 1),
        (Granularity::Cluster, 8),
    ] {
        set_granularity_override(Some(granularity));
        let ckpt = serde_json::from_str(&saved).expect("parse");
        let mut resumed = Simulator::restore(Arc::clone(&topo), NullTap, ckpt).expect("restore");
        resumed.set_parallel_width(Some(width));
        resumed.run_until(SimTime::from_millis(6));
        assert_eq!(
            serde_json::to_string(&resumed.checkpoint()).expect("json"),
            reference,
            "{granularity:?} width-{width} resume diverged from the uninterrupted run"
        );
    }
    set_granularity_override(None);
}

#[test]
fn workload_reopens_connections_aborted_by_flaps() {
    let topo = Arc::new(Topology::build(packet_tier_spec(ScenarioScale::Tiny)).expect("build"));
    let mut profiles = ServiceProfiles::default();
    profiles.rate_scale = 5.0;
    let mut workload = Workload::new(Arc::clone(&topo), profiles, 11).expect("workload");
    let mut sim =
        Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("valid config");

    // Flap every web rack uplink hard enough that pinned routes break
    // while requests are in flight.
    let mut plan = FaultPlan::new();
    for rack in topo.racks().iter().take(3) {
        for &h in rack.hosts.iter().take(1) {
            plan = plan.at(
                SimTime::from_millis(200),
                FaultKind::FlapLink {
                    link: topo.host_uplink(h),
                    half_period: SimDuration::from_millis(150),
                    cycles: 4,
                },
            );
        }
    }
    sim.inject_faults(&plan).expect("inject");

    let end = SimTime::from_millis(2_000);
    let mut t = SimTime::ZERO;
    while t < end {
        t += SimDuration::from_millis(250);
        workload.generate(&mut sim, t).expect("generate");
        sim.run_until(t);
    }
    sim.run_to_quiescence();
    sim.audit().expect("conservation under flaps");
    let (outputs, _) = sim.finish();
    assert!(outputs.faults_applied >= 6, "flaps must expand and apply");
    if outputs.aborted_connections + outputs.failed_handshakes > 0 {
        // Every aborted pooled connection must be replaced, not leaked:
        // the workload's reopen counter tracks the engine's abort count.
        assert!(
            workload.reopened_conns() > 0,
            "aborts happened but no connection was reopened"
        );
    }
    assert!(outputs.completed_requests > 0, "traffic must still flow");
}
