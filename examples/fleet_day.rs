//! Fleet-tier day: generate 24 hours of Fbflow samples across a
//! multi-datacenter fleet, print Table 3 and the Fig 5 matrix summaries,
//! and dump the demand matrices as JSON for external plotting.
//!
//! ```sh
//! cargo run --release --example fleet_day [samples_per_host] [out.json]
//! ```

use sonet_dc::core::reports::{fig5, table3};
use sonet_dc::core::{FleetData, FleetRunConfig, ScenarioScale};

fn main() {
    let mut args = std::env::args().skip(1);
    let samples: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(100);
    let out_path = args.next();

    let fleet = FleetData::run(&FleetRunConfig {
        seed: 2015,
        scale: ScenarioScale::Standard,
        samples_per_host: samples,
        agent_loss: 0.0,
    });
    println!(
        "fleet: {} hosts, {} Fbflow rows, {} relaxed locality picks\n",
        fleet.topo.hosts().len(),
        fleet.table.len(),
        fleet.relaxed_picks
    );
    println!("{}", table3(&fleet).render());
    let f5 = fig5(&fleet);
    println!("{}", f5.render());

    if let Some(path) = out_path {
        let json = serde_json::json!({
            "hadoop_rack_matrix": f5.hadoop_matrix,
            "frontend_rack_matrix": f5.frontend_matrix,
            "frontend_bipartite_fraction": f5.frontend_bipartite_fraction,
        });
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&json).expect("serializes"),
        )
        .expect("write output file");
        println!("matrices written to {path}");
    }
}
