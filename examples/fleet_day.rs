//! Fleet-tier day: generate 24 hours of Fbflow samples across a
//! multi-datacenter fleet, print Table 3 and the Fig 5 matrix summaries,
//! and dump the demand matrices as JSON for external plotting.
//!
//! ```sh
//! cargo run --release --example fleet_day [samples_per_host] [out.json]
//!     [--tiny] [--max-secs N] [--checkpoint DIR]
//! ```
//!
//! `--max-secs` (and/or `--checkpoint`) routes the run through the
//! supervised driver: samples spool to disk with rolling checkpoints, the
//! invariant auditor runs at each boundary, and a budget stop exits with
//! code 2 leaving a resumable checkpoint behind (CI uses this as its
//! smoke test of the supervision path).

use sonet_dc::core::reports::{fig5, table3};
use sonet_dc::core::supervised::{run_fleet, RunStatus, SuperviseOptions};
use sonet_dc::core::supervisor::RunBudget;
use sonet_dc::core::{FleetData, FleetRunConfig, ScenarioScale};
use sonet_dc::util::obs::report;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut samples: u32 = 100;
    let mut out_path: Option<String> = None;
    let mut tiny = false;
    let mut max_secs: Option<u64> = None;
    let mut checkpoint: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tiny" => tiny = true,
            "--max-secs" => max_secs = it.next().and_then(|s| s.parse().ok()),
            "--checkpoint" => checkpoint = it.next().cloned(),
            other => {
                if let Ok(n) = other.parse() {
                    samples = n;
                } else {
                    out_path = Some(other.to_string());
                }
            }
        }
    }

    let cfg = FleetRunConfig {
        seed: 2015,
        scale: if tiny {
            ScenarioScale::Tiny
        } else {
            ScenarioScale::Standard
        },
        samples_per_host: samples,
        agent_loss: 0.0,
    };

    let fleet = if max_secs.is_some() || checkpoint.is_some() {
        let dir = checkpoint.unwrap_or_else(|| "fleet-day-checkpoints".to_string());
        let opts = SuperviseOptions {
            budget: RunBudget {
                wall_clock: max_secs.map(Duration::from_secs),
                ..RunBudget::unlimited()
            },
            ..SuperviseOptions::new(dir)
        };
        match run_fleet(&cfg, &opts).expect("supervised fleet run") {
            (RunStatus::Completed, Some(data)) => data,
            (RunStatus::Stopped(reason), _) => {
                report::line(&format!(
                    "stopped ({reason}); checkpoint at {}",
                    opts.fleet_checkpoint_path().display()
                ));
                std::process::exit(2);
            }
            (RunStatus::Completed, None) => unreachable!("completed runs carry results"),
        }
    } else {
        FleetData::run(&cfg).expect("fleet run")
    };
    println!(
        "fleet: {} hosts, {} Fbflow rows, {} relaxed locality picks\n",
        fleet.topo.hosts().len(),
        fleet.table.len(),
        fleet.relaxed_picks
    );
    println!("{}", table3(&fleet).render());
    let f5 = fig5(&fleet).expect("fleet plants have all cluster types");
    println!("{}", f5.render());

    if let Some(path) = out_path {
        let json = serde_json::json!({
            "hadoop_rack_matrix": f5.hadoop_matrix,
            "frontend_rack_matrix": f5.frontend_matrix,
            "frontend_bipartite_fraction": f5.frontend_bipartite_fraction,
        });
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&json).expect("serializes"),
        )
        .expect("write output file");
        println!("matrices written to {path}");
    }
}
