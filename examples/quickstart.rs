//! Quickstart: build a small Facebook-style plant, capture a few seconds
//! of traffic with a port mirror, and print the headline analyses.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sonet_dc::core::{Lab, LabConfig};

fn main() {
    // A fast lab runs in seconds: a tiny two-datacenter plant, a short
    // port-mirror capture, and a fleet-tier Fbflow day.
    let mut lab = Lab::new(LabConfig::fast(42));

    println!("== sonet-dc quickstart ==\n");
    let capture = lab.capture();
    println!(
        "capture: {} packets delivered, {} RPC calls issued\n",
        capture.outputs.delivered_packets, capture.issued_calls
    );

    // Where does each service's outbound traffic go? (Table 2)
    println!("{}", lab.table2().render());

    // How local is traffic per cluster type? (Table 3, fleet tier)
    println!("{}", lab.table3().render());

    // How big are packets? (Fig 12)
    println!("{}", lab.fig12().render());

    // How fast do new flows arrive? (Fig 14)
    println!("{}", lab.fig14().render());

    // How busy are the links? (§4.1)
    println!("{}", lab.utilization().render());
}
