//! Hadoop workload vs the literature's MapReduce baseline — the contrast
//! the paper draws in Table 1.
//!
//! Runs both workloads on the same Hadoop-cluster plant, mirrors one node
//! in each, and prints the side-by-side comparison of locality, on/off
//! structure, packet sizes, flow arrival rates, and concurrency.
//!
//! ```sh
//! cargo run --release --example hadoop_vs_literature [seconds]
//! ```

use sonet_dc::analysis::concurrency::{concurrency_cdfs, CountEntity};
use sonet_dc::analysis::packets::{
    binned_counts, onoff_metrics, packet_size_cdf, syn_interarrival_cdf,
};
use sonet_dc::analysis::HostTrace;
use sonet_dc::netsim::{SimConfig, Simulator};
use sonet_dc::telemetry::PortMirror;
use sonet_dc::topology::{ClusterId, ClusterSpec, HostRole, Locality, Topology, TopologySpec};
use sonet_dc::util::{SimDuration, SimTime};
use sonet_dc::workload::literature::LiteratureConfig;
use sonet_dc::workload::{LiteratureWorkload, ServiceProfiles, Workload};
use std::sync::Arc;

struct Stats {
    rack_local_pct: f64,
    empty_15ms: f64,
    median_packet: f64,
    median_syn_ms: f64,
    concurrent_hosts: f64,
}

fn analyze(trace: &HostTrace, topo: &Topology, secs: u64) -> Stats {
    let out_bytes = trace.outbound_bytes().max(1);
    let rack: u64 = trace
        .outbound()
        .iter()
        .filter(|o| topo.locality(trace.host(), o.peer) == Locality::IntraRack)
        .map(|o| o.wire_bytes as u64)
        .sum();
    let counts = binned_counts(
        trace,
        SimDuration::from_millis(15),
        (secs * 1000 / 15) as usize,
    );
    let conc = concurrency_cdfs(trace, topo, SimDuration::from_millis(5), CountEntity::Hosts);
    Stats {
        rack_local_pct: rack as f64 / out_bytes as f64 * 100.0,
        empty_15ms: onoff_metrics(&counts).empty_fraction,
        median_packet: packet_size_cdf(trace).median().unwrap_or(0.0),
        median_syn_ms: syn_interarrival_cdf(trace)
            .median()
            .map(|v| v / 1000.0)
            .unwrap_or(0.0),
        concurrent_hosts: conc.all.median().unwrap_or(0.0),
    }
}

fn main() {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let topo = Arc::new(
        Topology::build(TopologySpec::single_dc(vec![ClusterSpec::hadoop(6, 6)]))
            .expect("valid plant"),
    );

    // --- literature baseline ---
    let mut lit = LiteratureWorkload::new(
        Arc::clone(&topo),
        LiteratureConfig::default(),
        ClusterId(0),
        1,
    );
    let mut sim = Simulator::new(
        Arc::clone(&topo),
        SimConfig::default(),
        PortMirror::new(4_000_000),
    )
    .expect("config");
    let host = topo.racks()[0].hosts[0];
    sim.watch_link(topo.host_uplink(host));
    sim.watch_link(topo.host_downlink(host));
    let mut t = SimTime::ZERO;
    while t < SimTime::from_secs(secs) {
        t += SimDuration::from_millis(250);
        lit.generate(&mut sim, t).expect("generate");
        sim.run_until(t);
    }
    let (_, mirror) = sim.finish();
    let lit_stats = analyze(&HostTrace::from_mirror(mirror.records(), host), &topo, secs);

    // --- this paper's Hadoop ---
    let mut profiles = ServiceProfiles::default();
    profiles.rate_scale = 8.0;
    let mut wl = Workload::new(Arc::clone(&topo), profiles, 1).expect("workload");
    let host = wl.monitored_host(HostRole::Hadoop).expect("hadoop host");
    wl.ensure_busy_start(host, secs as f64);
    let mut sim = Simulator::new(
        Arc::clone(&topo),
        SimConfig::default(),
        PortMirror::new(4_000_000),
    )
    .expect("config");
    sim.watch_link(topo.host_uplink(host));
    sim.watch_link(topo.host_downlink(host));
    let mut t = SimTime::ZERO;
    while t < SimTime::from_secs(secs) {
        t += SimDuration::from_millis(250);
        wl.generate(&mut sim, t).expect("generate");
        sim.run_until(t);
    }
    let (_, mirror) = sim.finish();
    let fb_stats = analyze(&HostTrace::from_mirror(mirror.records(), host), &topo, secs);

    println!("== Hadoop: literature baseline vs Facebook-style (Table 1 contrast) ==\n");
    println!("metric                          literature    facebook   paper says");
    println!(
        "rack-local bytes (%)            {:>10.1}  {:>10.1}   50-80 vs ~76 busy / 13 fleet",
        lit_stats.rack_local_pct, fb_stats.rack_local_pct
    );
    println!(
        "empty 15-ms bins (fraction)     {:>10.2}  {:>10.2}   on/off vs continuous",
        lit_stats.empty_15ms, fb_stats.empty_15ms
    );
    println!(
        "median packet (bytes)           {:>10.0}  {:>10.0}   bimodal for both Hadoops",
        lit_stats.median_packet, fb_stats.median_packet
    );
    println!(
        "median SYN gap (ms)             {:>10.2}  {:>10.2}   FB flow intensity ~10x higher",
        lit_stats.median_syn_ms, fb_stats.median_syn_ms
    );
    println!(
        "concurrent hosts per 5 ms       {:>10.1}  {:>10.1}   <5 vs ~25",
        lit_stats.concurrent_hosts, fb_stats.concurrent_hosts
    );
}
