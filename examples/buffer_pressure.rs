//! Switch-buffer study (§6.3 / Fig 15): shared-buffer occupancy under a
//! diurnally modulated frontend workload, plus an incast stress test
//! showing dynamic-threshold admission at work.
//!
//! ```sh
//! cargo run --release --example buffer_pressure [seconds]
//! ```

use sonet_dc::core::reports::{fig15, Fig15Config};
use sonet_dc::core::ScenarioScale;
use sonet_dc::netsim::{BufferConfig, NullTap, SimConfig, Simulator};
use sonet_dc::topology::{ClusterSpec, Topology, TopologySpec};
use sonet_dc::util::{SimDuration, SimTime};
use std::sync::Arc;

fn main() {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);

    // Part 1: the compressed-day buffer experiment behind Fig 15.
    let report = fig15(&Fig15Config {
        seed: 3,
        scale: ScenarioScale::Tiny,
        duration: SimDuration::from_secs(secs),
        rate_scale: 25.0,
        sample_interval: SimDuration::from_micros(50),
        rsw_buffer: BufferConfig {
            shared_bytes: 32 << 10,
            alpha: 1.0,
        },
    })
    .expect("fig15 config is valid");
    println!("{}", report.render());

    // Part 2: incast into one host under different shared-buffer budgets.
    println!("== incast stress: 24 senders -> 1 receiver, 400 kB each ==\n");
    println!("buffer   alpha   egress drops   all transfers done");
    let topo = Arc::new(
        Topology::build(TopologySpec::single_dc(vec![ClusterSpec::frontend(8, 4)]))
            .expect("valid plant"),
    );
    for (shared, alpha) in [(256 << 10, 0.5), (1 << 20, 1.0), (12 << 20, 1.0)] {
        let mut cfg = SimConfig::default();
        cfg.rsw_buffer = BufferConfig {
            shared_bytes: shared,
            alpha,
        };
        let mut sim = Simulator::new(Arc::clone(&topo), cfg, NullTap).expect("valid config");
        let dst = topo.racks()[0].hosts[0];
        let mut n = 0u64;
        for rack in topo.racks().iter().skip(1).take(6) {
            for &src in &rack.hosts {
                let c = sim
                    .open_connection(SimTime::ZERO, src, dst, 80)
                    .expect("open");
                sim.send_message(c, SimTime::from_micros(5), 400_000, 0, SimDuration::ZERO)
                    .expect("send");
                n += 1;
            }
        }
        sim.run_to_quiescence();
        let drops = sim.link_counters(topo.host_downlink(dst)).drop_packets;
        let (out, _) = sim.finish();
        println!(
            "{:>5} kB  {alpha:<5} {drops:>12}   {} / {n}",
            shared >> 10,
            out.completed_requests
        );
    }
}
