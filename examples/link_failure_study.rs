//! Fault-injection study: kill one CSW post of the frontend cluster
//! mid-capture (with a window of degraded mirror collection) and compare
//! the degraded run against the healthy baseline — how much traffic the
//! dead post ate, how many flows ECMP re-hashed around it, and what the
//! monitoring itself lost while the plant was sick.
//!
//! ```sh
//! cargo run --release --example link_failure_study [seed] [seconds]
//! ```

use sonet_dc::core::{packet_tier_spec, CaptureConfig, Lab, LabConfig, ScenarioScale};
use sonet_dc::netsim::{FaultKind, FaultPlan};
use sonet_dc::topology::{SwitchId, SwitchKind, Topology};
use sonet_dc::util::{SimDuration, SimTime};

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2015);
    // Below 3s the thirds collapse (down_at == up_at == 0) and there is
    // no outage window to study.
    let seconds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(6).max(3);

    // The capture builds this same plant; derive the fault plan from it so
    // the failed switch is a real CSW post of the run.
    let topo = Topology::build(packet_tier_spec(ScenarioScale::Tiny)).expect("valid spec");
    let csw = topo
        .switches()
        .iter()
        .position(|s| s.kind == SwitchKind::Csw)
        .map(|i| SwitchId(i as u32))
        .expect("plant has CSW posts");

    // The post dies a third of the way in and recovers at two thirds;
    // while it is down, the mirror's collection path also drops 60% of
    // what it is offered (telemetry degrades alongside the network).
    let down_at = SimTime::from_secs(seconds / 3);
    let up_at = SimTime::from_secs(2 * seconds / 3);
    let plan = FaultPlan::new()
        .at(down_at, FaultKind::SwitchDown(csw))
        .at(down_at, FaultKind::MirrorLoss { fraction: 0.6 })
        .at(up_at, FaultKind::SwitchUp(csw))
        .at(up_at, FaultKind::MirrorLoss { fraction: 0.0 });

    let capture = |faults: FaultPlan| {
        CaptureConfig {
            duration: SimDuration::from_secs(seconds),
            ..CaptureConfig::fast(seed)
        }
        .with_faults(faults)
    };

    println!("== link failure study (seed {seed}, {seconds}s, dead post {csw:?}) ==\n");

    let mut healthy = Lab::new(LabConfig {
        capture: capture(FaultPlan::new()),
        ..LabConfig::fast(seed)
    });
    let mut faulted = Lab::new(LabConfig {
        capture: capture(plan),
        ..LabConfig::fast(seed)
    });

    let deg = faulted.degradation();
    println!("{}\n", deg.render());
    assert!(
        deg.reroutes > 0,
        "expected flows to re-hash around the dead post"
    );

    let h = healthy.capture();
    let f = faulted.capture();
    println!(
        "delivered packets: healthy {}, faulted {}",
        h.outputs.delivered_packets, f.outputs.delivered_packets
    );
    println!(
        "buffer drops:      healthy {}, faulted {}",
        h.outputs
            .link_counters
            .iter()
            .map(|c| c.drop_packets)
            .sum::<u64>(),
        f.outputs
            .link_counters
            .iter()
            .map(|c| c.drop_packets)
            .sum::<u64>(),
    );
    println!(
        "mirror capture:    healthy {} pkts (lost 0), faulted {} pkts (lost {})\n",
        h.mirror_offered,
        f.mirror_offered - f.mirror_fault_dropped,
        f.mirror_fault_dropped,
    );

    // Locality through the outage: a dead post shifts flows to sibling
    // posts in the same cluster, so Fig 4's locality shares should barely
    // move while raw volume dips.
    println!("--- healthy Fig 4 ---\n{}", healthy.fig4().render());
    println!("--- faulted Fig 4 ---\n{}", faulted.fig4().render());
}
