//! Frontend-cluster deep dive: the paper's core workload (an HTTP request
//! fanning out to cache/multifeed/misc backends, §3.2 Fig 2), analyzed
//! from a port-mirror capture like §4–6 do.
//!
//! Prints the per-second locality series (Fig 4), the cache follower's
//! flow-size collapse under load balancing (Fig 9), rate stability
//! (Fig 8), heavy-hitter dynamics (Fig 10/11), and 5-ms concurrency
//! (Fig 16/17).
//!
//! ```sh
//! cargo run --release --example frontend_cluster [seed] [seconds]
//! ```

use sonet_dc::core::{CaptureConfig, Lab, LabConfig, ScenarioScale};
use sonet_dc::util::SimDuration;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(7);
    let seconds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);

    let mut cfg = LabConfig::fast(seed);
    cfg.capture = CaptureConfig {
        seed,
        scale: ScenarioScale::Tiny,
        duration: SimDuration::from_secs(seconds),
        rate_scale: 8.0,
        mirror_capacity: 4_000_000,
        faults: sonet_dc::netsim::FaultPlan::new(),
        fidelity: sonet_dc::netsim::FidelityMode::Packet,
    };
    let mut lab = Lab::new(cfg);

    println!("== frontend cluster study (seed {seed}, {seconds}s trace) ==\n");
    println!("{}", lab.fig4().render());
    if let Some(f8) = lab.fig8() {
        println!("{}", f8.render());
    }
    if let Some(f9) = lab.fig9() {
        println!("{}", f9.render());
    }
    println!("{}", lab.fig10().render());
    println!("{}", lab.fig11().render());
    println!("{}", lab.fig16().render());
    println!("{}", lab.fig17().render());
}
