//! Traffic-engineering feasibility study (§5 of the paper, end to end):
//! given a Facebook-style frontend workload, how much traffic could a
//! reactive TE scheme actually treat?
//!
//! Prints per-destination-rack stability (Fig 8), heavy-hitter
//! persistence (Fig 10), and the §5.4 predictability bound, then repeats
//! the analysis with load balancing sabotaged (unmitigated hot objects)
//! to show how much of the paper's "TE has little to work with" story is
//! down to Facebook's own engineering.
//!
//! ```sh
//! cargo run --release --example te_study [seconds]
//! ```

use sonet_dc::analysis::heavy_hitters::HeavyHitterAgg;
use sonet_dc::analysis::rates::rack_rate_series;
use sonet_dc::analysis::te::predictability;
use sonet_dc::analysis::HostTrace;
use sonet_dc::netsim::{SimConfig, Simulator};
use sonet_dc::telemetry::PortMirror;
use sonet_dc::topology::{ClusterSpec, HostRole, Topology, TopologySpec};
use sonet_dc::util::{SimDuration, SimTime};
use sonet_dc::workload::{HotObjectConfig, ServiceProfiles, Workload};
use std::sync::Arc;

fn run_cachef(topo: &Arc<Topology>, profiles: ServiceProfiles, secs: u64) -> HostTrace {
    let mut wl = Workload::new(Arc::clone(topo), profiles, 42).expect("workload");
    let host = wl
        .monitored_host(HostRole::CacheFollower)
        .expect("cache-f exists");
    let mut sim = Simulator::new(
        Arc::clone(topo),
        SimConfig::default(),
        PortMirror::new(4_000_000),
    )
    .expect("config");
    sim.watch_link(topo.host_uplink(host));
    sim.watch_link(topo.host_downlink(host));
    let mut t = SimTime::ZERO;
    while t < SimTime::from_secs(secs) {
        t += SimDuration::from_millis(250);
        wl.generate(&mut sim, t).expect("generate");
        sim.run_until(t);
    }
    let (_, mirror) = sim.finish();
    HostTrace::from_mirror(mirror.records(), host)
}

fn report(label: &str, trace: &HostTrace, topo: &Topology, secs: u64) {
    println!("---- {label} ----");
    let m = rack_rate_series(trace, topo, secs as usize).stability_metrics();
    println!(
        "rate stability: {:.0}% within 2x of median, {:.0}% significant change",
        m.fraction_within_2x_of_median * 100.0,
        m.fraction_significant_change * 100.0
    );
    for agg in [HeavyHitterAgg::Flow, HeavyHitterAgg::Rack] {
        if let Some(p) = predictability(trace, topo, SimDuration::from_millis(100), agg) {
            println!(
                "TE bound ({} @100ms): median {:.0}% of bytes covered by last \
                 interval's hitters ({}Benson's 35% bar)",
                agg.label(),
                p.median_covered_pct,
                if p.clears_benson_bar() {
                    "clears "
                } else {
                    "misses "
                }
            );
        }
    }
    println!();
}

fn main() {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let topo = Arc::new(
        Topology::build(TopologySpec::single_dc(vec![
            ClusterSpec::frontend(10, 4),
            ClusterSpec::cache(2, 4),
            ClusterSpec::service(2, 4),
            ClusterSpec::database(2, 4),
            ClusterSpec::hadoop(2, 4),
        ]))
        .expect("valid plant"),
    );

    println!("== TE feasibility study, cache follower vantage ({secs}s traces) ==\n");

    let mut balanced = ServiceProfiles::default();
    balanced.rate_scale = 8.0;
    let trace = run_cachef(&topo, balanced, secs);
    report("production-style (load balanced)", &trace, &topo, secs);

    let mut hot = ServiceProfiles::default();
    hot.rate_scale = 8.0;
    hot.hot_objects = HotObjectConfig {
        hot_fraction: 0.7,
        rotation: SimDuration::from_millis(800),
        detect_after: SimDuration::from_millis(100),
        mitigated: false,
    };
    let trace = run_cachef(&topo, hot, secs);
    report(
        "sabotaged (hot objects, no mitigation)",
        &trace,
        &topo,
        secs,
    );

    println!(
        "paper §5.4: effective load balancing leaves TE little to exploit — \n\
         heavy hitters barely differ from the median flow and churn quickly; \n\
         only coarse (rack-level) aggregation is predictable enough to act on."
    );
}
